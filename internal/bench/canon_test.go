package bench

// Differential test for canonical slice normalization: VerifyAll with
// class-level solving + witness translation (default) must return verdicts
// AND traces bit-identical to Options.NoCanon solving, across seeds,
// scenarios (datacenter, multitenant, caches), engines and worker counts —
// `go test -race` exercises concurrent class solving. The incremental
// layer gets the same treatment: canonical Sessions must stay
// Apply-for-Apply identical to NoCanon Sessions across change streams.

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/topo"
)

// runCanonDiff verifies invs both ways and requires bit-identical reports.
func runCanonDiff(t *testing.T, net *core.Network, opts core.Options, invs []inv.Invariant, workers int, label string) {
	t.Helper()
	canonOpts := opts
	canonOpts.InvWorkers = workers
	vc, err := core.NewVerifier(net, canonOpts)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := vc.VerifyAll(invs, false)
	if err != nil {
		t.Fatal(err)
	}
	plainOpts := opts
	plainOpts.NoCanon = true
	vp, err := core.NewVerifier(net, plainOpts)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := vp.VerifyAll(invs, false)
	if err != nil {
		t.Fatal(err)
	}
	diffReports(t, label, canon, plain)
	classes, shared, _ := vc.CanonStats()
	if shared == 0 {
		t.Fatalf("%s: canonicalization never shared a verdict (classes=%d)", label, classes)
	}
	// Every canonicalizable check is either a solved representative or a
	// translated member; a shortfall means witness translation fell back
	// to solving, which class-key equality is supposed to rule out.
	if total := int64(len(canon)); classes+shared != total {
		t.Fatalf("%s: translation fell back to solving: classes=%d shared=%d of %d checks",
			label, classes, shared, total)
	}
}

func TestCanonMatchesNoCanonMultiTenant(t *testing.T) {
	for _, seed := range []int64{0, 1} {
		for _, workers := range []int{1, 4} {
			m := NewMultiTenant(MTConfig{Tenants: 5, PubPerTenant: 1, PrivPerTenant: 1})
			var invs []inv.Invariant
			for a := 0; a < 5; a++ {
				for b := 0; b < 5; b++ {
					if a != b {
						invs = append(invs, m.PrivPrivInvariant(a, b),
							m.PubPrivInvariant(a, b), m.PrivPubInvariant(a, b))
					}
				}
			}
			opts := core.Options{Engine: core.EngineSAT, Seed: seed}
			runCanonDiff(t, m.Net, opts, invs, workers,
				fmt.Sprintf("multitenant seed=%d workers=%d", seed, workers))
		}
	}
}

func TestCanonMatchesNoCanonDatacenter(t *testing.T) {
	for _, seed := range []int64{0, 1} {
		d := NewDatacenter(DCConfig{Groups: 4, HostsPerGroup: 1})
		// Punch holes so a mix of violated (traced) and holding invariants
		// is verified — witness translation must reproduce the traces.
		d.DeleteRandomDenyRules(rand.New(rand.NewSource(seed)), 2)
		opts := core.Options{Engine: core.EngineSAT, Seed: seed, RandomBranchFreq: 0.02}
		runCanonDiff(t, d.Net, opts, d.AllIsolationInvariants(), 3,
			fmt.Sprintf("datacenter seed=%d", seed))
	}
}

func TestCanonMatchesNoCanonUnderFailures(t *testing.T) {
	d := NewDatacenter(DCConfig{Groups: 3, HostsPerGroup: 1})
	d.DeleteBackupDenyRules(rand.New(rand.NewSource(5)), 1)
	opts := core.Options{
		Engine:    core.EngineSAT,
		Seed:      5,
		Scenarios: []topo.FailureScenario{topo.NoFailures(), topo.Failures(d.FW1)},
	}
	runCanonDiff(t, d.Net, opts, d.AllIsolationInvariants(), 3, "datacenter failure scenarios")
}

func TestCanonMatchesNoCanonCaches(t *testing.T) {
	// Origin-agnostic caches: data-isolation invariants, 4-step schedules,
	// fill/probe traces. One group's cache ACLs are deleted so violated
	// and holding checks both appear. Distinct groups do NOT class-share
	// here — §4.1 pulls one representative of every policy class into an
	// origin-agnostic slice, so each group's destination sits at a
	// different position in the (shared) host list (a documented
	// completeness limit); the duplicated invariant pins that exact
	// repeats still share, and the differential identity is the point.
	d := NewDatacenter(DCConfig{Groups: 4, HostsPerGroup: 1, WithCaches: true})
	d.DeleteCacheACLs(0, 0)
	var invs []inv.Invariant
	for g := 0; g < 4; g++ {
		invs = append(invs, d.DataIsolationInvariant(g))
	}
	invs = append(invs, d.DataIsolationInvariant(0)) // violated: trace shared
	opts := core.Options{Engine: core.EngineSAT, Seed: 3}
	runCanonDiff(t, d.Net, opts, invs, 2, "datacenter caches")
}

func TestCanonMatchesNoCanonExplicitEngine(t *testing.T) {
	// The explicit engine's exploration order is renaming-sensitive only
	// through state-key sorting, which never affects which witness a
	// level-synchronous search reports; the translated traces must still
	// be bit-identical.
	m := NewMultiTenant(MTConfig{Tenants: 4, PubPerTenant: 1, PrivPerTenant: 1})
	var invs []inv.Invariant
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if a != b {
				invs = append(invs, m.PrivPrivInvariant(a, b), m.PrivPubInvariant(a, b))
			}
		}
	}
	opts := core.Options{Engine: core.EngineExplicit, Seed: 0, Workers: 2}
	runCanonDiff(t, m.Net, opts, invs, 2, "multitenant explicit")
}

// sessionPair runs the same change stream through a canonical session and
// a NoCanon session and requires bit-identical reports after every Apply.
func sessionPair(t *testing.T, mkNet func() (*core.Network, []inv.Invariant),
	changes func(step int, net *core.Network) []incr.Change, steps int,
	opts core.Options, sopts incr.Options, label string) {
	t.Helper()

	netC, invs := mkNet()
	canonOpts := opts
	sessC, repC, err := incr.NewSession(netC, canonOpts, invs, sopts)
	if err != nil {
		t.Fatal(err)
	}
	netP, invsP := mkNet()
	plainOpts := opts
	plainOpts.NoCanon = true
	sessP, repP, err := incr.NewSession(netP, plainOpts, invsP, sopts)
	if err != nil {
		t.Fatal(err)
	}
	diffReports(t, label+" initial", repC, repP)

	for step := 0; step < steps; step++ {
		repC, err = sessC.Apply(changes(step, netC))
		if err != nil {
			t.Fatal(err)
		}
		repP, err = sessP.Apply(changes(step, netP))
		if err != nil {
			t.Fatal(err)
		}
		diffReports(t, fmt.Sprintf("%s step %d", label, step), repC, repP)
	}
}

func TestCanonSessionMatchesNoCanonMultiTenant(t *testing.T) {
	const T = 5
	mk := func() (*core.Network, []inv.Invariant) {
		m := NewMultiTenant(MTConfig{Tenants: T, PubPerTenant: 1, PrivPerTenant: 1})
		var invs []inv.Invariant
		for a := 0; a < T; a++ {
			for b := 0; b < T; b++ {
				if a != b {
					invs = append(invs, m.PrivPrivInvariant(a, b))
				}
			}
		}
		return m.Net, invs
	}
	changes := func(step int, net *core.Network) []incr.Change {
		// The change stream must be identical for both sessions: derive it
		// from the step number and the (deterministic) topology.
		tn := step % T
		vm, _ := net.Topo.ByName(fmt.Sprintf("priv%d-0", tn))
		switch step % 2 {
		case 0:
			return []incr.Change{incr.NodeDown(vm.ID)}
		default:
			return []incr.Change{incr.NodeUp(vm.ID)}
		}
	}
	sessionPair(t, mk, changes, 6,
		core.Options{Engine: core.EngineSAT, Seed: 1},
		incr.Options{Workers: 3}, "session multitenant")
}

// TestCanonVerdictCacheAcrossIsomorphicFootprints pins the cross-footprint
// payoff: a configuration change re-verified and cached for one tenant
// answers the SAME change later applied to a different tenant — fresh
// addresses, fresh node IDs, isomorphic footprint — through canonical
// verdict-cache keys with witness translation, without re-solving.
func TestCanonVerdictCacheAcrossIsomorphicFootprints(t *testing.T) {
	const T = 4
	m := NewMultiTenant(MTConfig{Tenants: T, PubPerTenant: 1, PrivPerTenant: 1})
	var invs []inv.Invariant
	for a := 0; a < T; a++ {
		for b := 0; b < T; b++ {
			if a != b {
				invs = append(invs, m.PrivPrivInvariant(a, b))
			}
		}
	}
	sess, _, err := incr.NewSession(m.Net, core.Options{Engine: core.EngineSAT},
		invs, incr.Options{NoSymmetry: true})
	if err != nil {
		t.Fatal(err)
	}

	shadow := func(tn int) incr.Change {
		m.Firewalls[tn].ACL = append([]mbox.ACLEntry{
			mbox.AllowEntry(TenantPrivPrefix(tn), TenantPrivPrefix(tn)),
		}, m.Firewalls[tn].ACL...)
		return incr.BoxReconfig(m.VSwitchFW[tn])
	}

	// Shadow tenant 1's firewall: novel configurations, so the dirty
	// pairs re-solve (dead-entry elimination may still serve pairs whose
	// effective policy is unchanged).
	if _, err := sess.Apply([]incr.Change{shadow(1)}); err != nil {
		t.Fatal(err)
	}
	st1 := sess.LastApply()
	if st1.CacheMisses == 0 {
		t.Fatalf("novel configuration must solve something: %+v", st1)
	}

	// The identical change on tenant 2: every dirty pair not involving
	// tenant 1 lands on a footprint isomorphic to one already cached for
	// tenant 1 — canonical hits with translated witnesses, no solve. Only
	// the (1,2)/(2,1) pairs — BOTH firewalls shadowed, a genuinely new
	// shape — may re-solve.
	if _, err := sess.Apply([]incr.Change{shadow(2)}); err != nil {
		t.Fatal(err)
	}
	st2 := sess.LastApply()
	if st2.CanonHits == 0 {
		t.Fatalf("isomorphic footprint must hit the canonical verdict cache: %+v", st2)
	}
	if st2.CacheMisses > 2 {
		t.Fatalf("only the doubly-shadowed pairs may re-solve: %+v", st2)
	}
	tot := sess.TotalStats()
	if tot.CanonHits == 0 || tot.Classes == 0 {
		t.Fatalf("session totals must expose canonical counters: %+v", tot)
	}
}

func TestCanonSessionMatchesNoCanonDatacenter(t *testing.T) {
	const G = 4
	mk := func() (*core.Network, []inv.Invariant) {
		d := NewDatacenter(DCConfig{Groups: G, HostsPerGroup: 1})
		return d.Net, d.AllIsolationInvariants()
	}
	changes := func(step int, net *core.Network) []incr.Change {
		g := step % G
		h, _ := net.Topo.ByName(fmt.Sprintf("h%d-0", g))
		switch step % 3 {
		case 0:
			return []incr.Change{incr.Relabel(h.ID, fmt.Sprintf("churn-%d", g))}
		case 1:
			return []incr.Change{incr.NodeDown(h.ID)}
		default:
			return []incr.Change{incr.NodeUp(h.ID), incr.Relabel(h.ID, "")}
		}
	}
	sessionPair(t, mk, changes, 6,
		core.Options{Engine: core.EngineSAT, Seed: 2},
		incr.Options{Workers: 2}, "session datacenter")
}
