package bench

import (
	"fmt"

	"github.com/netverify/vmn/internal/core"
)

// FigExplicit measures the explicit-state engine on the Fig. 2 datacenter
// "rules/holds" instance at an elevated schedule bound (the explicit
// engine's cost driver), sweeping the search worker count. The verdict,
// trace and state count are identical across worker counts by
// construction, so the sweep isolates the search loop's scaling; states
// explored per run is recorded so consumers can track states/sec.
func FigExplicit(workerCounts []int, runs int) Series {
	s := Series{Fig: "explicit", Title: "explicit engine: time per invariant vs search workers"}
	for _, workers := range workerCounts {
		row := Row{Label: fmt.Sprintf("rules-holds/w%d", workers), X: workers}
		for r := 0; r < runs; r++ {
			d := NewDatacenter(DCConfig{Groups: 5, HostsPerGroup: 1})
			v := mustVerifier(d.Net, core.Options{
				Engine:   core.EngineExplicit,
				MaxSends: 4,
				Workers:  workers,
			})
			var states int
			row.Samples = append(row.Samples, timeIt(func() {
				rs := mustVerify(v, d.IsolationInvariant(0, 1))
				assertOutcome(rs[0], true)
				states = rs[0].Result.StatesExplored
			}))
			row.States = states
		}
		s.Rows = append(s.Rows, row)
	}
	return s
}

// statesCol renders the optional states/sec, churn, solver-reuse and
// canonicalization columns of Print.
func statesCol(r Row) string {
	if sps := r.StatesPerSec(); sps > 0 {
		return fmt.Sprintf("%8.0f st/s", sps)
	}
	if r.Classes > 0 {
		checks := r.Invariants * len(r.Samples) // Solves/Shared are run totals
		reuse := 1 - float64(r.Solves)/float64(checks)
		return fmt.Sprintf("classes %d, shared %d, enc builds %d, reuse %.0f%%",
			r.Classes, r.Shared, r.Solves, 100*reuse)
	}
	if r.Solves > 0 && r.Dirtied == 0 {
		return fmt.Sprintf("enc hits %d, builds %d, conflicts %d", r.CacheHits, r.Solves, r.Conflicts)
	}
	if r.Invariants > 0 {
		return fmt.Sprintf("dirty %d/%d (%.1f%%), refined-clean %d, hits %d, solves %d",
			r.Dirtied, r.Invariants, 100*r.DirtyFraction, r.RefinedClean, r.CacheHits, r.Solves)
	}
	return ""
}
