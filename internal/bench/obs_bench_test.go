package bench

// Instrumentation overhead on the churn hot path: the same
// steering-rule toggle stream at the shared aggregation switch (the
// churnDatacenterFIB workload) with observability disabled (the library
// default — every hook is a nil check) and fully enabled (span tree,
// metrics registry, periodic trace drain simulating a scraper). The
// DESIGN.md overhead budget (≤1% disabled) is asserted against these two
// numbers:
//
//	go test ./internal/bench -run '^$' -bench ChurnApplyObs -count 10

import (
	"testing"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/obs"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

func benchChurnStream(b *testing.B, o *obs.Obs) {
	const G = churnGroups
	d := NewDatacenter(DCConfig{Groups: G, HostsPerGroup: 1})
	sess, _, err := incr.NewSession(d.Net, core.Options{Engine: core.EngineSAT},
		d.AllIsolationInvariants(), incr.Options{Obs: o})
	if err != nil {
		b.Fatal(err)
	}
	baseFIB := d.Net.FIBFor
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rules []tf.Rule
		if i%2 == 0 {
			rules = []tf.Rule{{Match: ClientPrefix(i % G), In: topo.NodeNone, Out: d.FW1, Priority: 11}}
		}
		ch := incr.FIBUpdate(overlayFIB(baseFIB, map[topo.NodeID][]tf.Rule{d.Agg: rules}))
		if _, err := sess.Apply([]incr.Change{ch}); err != nil {
			b.Fatal(err)
		}
		if o != nil && i%64 == 63 {
			o.Trace.Drain() // a scraper keeps the ring from saturating
		}
	}
}

func BenchmarkChurnApplyObsOff(b *testing.B) { benchChurnStream(b, nil) }
func BenchmarkChurnApplyObsOn(b *testing.B)  { benchChurnStream(b, obs.New(4096)) }
