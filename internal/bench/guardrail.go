package bench

import (
	"math/rand"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// guardrailGroups sizes the deployment-guardrail datacenter: every pair
// isolation invariant routes through the primary firewall, so a bad
// firewall change dirties the whole set — the worst case for the
// transactional path.
const guardrailGroups = 8

// Guardrail measures the transactional what-if path (the deployment
// guardrail: verify a change before it goes live) against the only
// alternative an operator has without it — applying the bad change to the
// live verifier and reverting it. Two twin sessions walk the same
// schedule; each step measures
//
//	guardrail/propose-rollback  Propose(violating fw change) — including
//	                            the verified minimal-repair search — then
//	                            Rollback, on one session
//	guardrail/apply-revert      Apply(same change) then Apply(the revert)
//	                            on the twin
//
// followed by a benign steering change both twins adopt, measured as
//
//	guardrail/propose-commit    Propose + Commit
//	guardrail/apply             plain Apply
//
// so the figure also reports the overhead of routing GOOD changes through
// the transaction. Dirtied/CacheHits/Solves aggregate the sessions'
// accounting as in the churn figure.
func Guardrail(steps, runs int) Series {
	s := Series{Fig: "guardrail", Title: "transactional what-if (propose/rollback) vs apply-then-revert"}
	pr := Row{Label: "guardrail/propose-rollback", X: steps}
	ar := Row{Label: "guardrail/apply-revert", X: steps}
	pc := Row{Label: "guardrail/propose-commit", X: steps}
	ap := Row{Label: "guardrail/apply", X: steps}
	for r := 0; r < runs; r++ {
		guardrailRun(steps, int64(r), &pr, &ar, &pc, &ap)
	}
	for _, row := range []*Row{&pr, &ar, &pc, &ap} {
		if n := len(row.Samples); n > 0 {
			if row.Invariants > 0 {
				row.DirtyFraction = float64(row.Dirtied) / float64(n) / float64(row.Invariants)
			}
			row.Dirtied /= n
		}
	}
	s.Rows = append(s.Rows, pr, ar, pc, ap)
	return s
}

// guardrailSession owns one datacenter and its verification session.
type guardrailSession struct {
	d       *Datacenter
	sess    *incr.Session
	baseFIB func(topo.FailureScenario) tf.FIB
	overlay map[topo.NodeID][]tf.Rule
}

func newGuardrailSession(seed int64) *guardrailSession {
	d := NewDatacenter(DCConfig{Groups: guardrailGroups, HostsPerGroup: 1})
	sess, _, err := incr.NewSession(d.Net, core.Options{Engine: core.EngineSAT, Seed: seed},
		d.AllIsolationInvariants(), instrumented(incr.Options{}))
	if err != nil {
		panic(err)
	}
	return &guardrailSession{d: d, sess: sess, baseFIB: d.Net.FIBFor, overlay: map[topo.NodeID][]tf.Rule{}}
}

// holeFW clones the primary firewall with an allow entry punched above
// the group-isolation denies — the canonical bad change a guardrail must
// catch before deployment.
func (g *guardrailSession) holeFW(grp int) *mbox.LearningFirewall {
	fw := g.d.FWPrimary
	return &mbox.LearningFirewall{
		InstanceName: fw.InstanceName,
		ACL: append([]mbox.ACLEntry{
			mbox.AllowEntry(ClientPrefix(grp), ClientPrefix((grp+1)%guardrailGroups)),
		}, fw.ACL...),
		DefaultAllow: fw.DefaultAllow,
	}
}

// cleanFW clones the primary firewall as-is (the revert payload).
func (g *guardrailSession) cleanFW() *mbox.LearningFirewall {
	fw := g.d.FWPrimary
	return &mbox.LearningFirewall{
		InstanceName: fw.InstanceName,
		ACL:          append([]mbox.ACLEntry(nil), fw.ACL...),
		DefaultAllow: fw.DefaultAllow,
	}
}

// steeringToggle flips a shadow steering rule for one group's prefix at
// the shared aggregation switch — the benign change of the churn figure.
func (g *guardrailSession) steeringToggle(grp int) []incr.Change {
	if len(g.overlay[g.d.Agg]) > 0 {
		delete(g.overlay, g.d.Agg)
	} else {
		g.overlay[g.d.Agg] = []tf.Rule{{
			Match: ClientPrefix(grp), In: topo.NodeNone, Out: g.d.FW1, Priority: 11,
		}}
	}
	return []incr.Change{incr.FIBUpdate(overlayFIB(g.baseFIB, g.overlay))}
}

func guardrailRun(steps int, seed int64, pr, ar, pc, ap *Row) {
	tx := newGuardrailSession(seed)
	tw := newGuardrailSession(seed)
	rng := rand.New(rand.NewSource(seed + 3))

	account := func(row *Row, st incr.ApplyStats) {
		row.Invariants = st.Invariants
		row.Dirtied += st.DirtyInvariants
		row.CacheHits += st.CacheHits
		row.Solves += st.CacheMisses
	}

	for step := 0; step < steps; step++ {
		grp := rng.Intn(guardrailGroups)

		// Violating change: the guardrail proposes, sees the rejection
		// (with its verified repair), and rolls back ...
		var res *incr.ProposeResult
		pr.Samples = append(pr.Samples, timeIt(func() {
			var err error
			if res, err = tx.sess.Propose([]incr.Change{incr.BoxSwap(tx.d.FW1, tx.holeFW(grp))}); err != nil {
				panic(err)
			}
			if res.Decision != incr.Reject {
				panic("guardrail: violating change not rejected")
			}
			if err := tx.sess.Rollback(); err != nil {
				panic(err)
			}
		}))
		account(pr, res.Stats)

		// ... while the twin must deploy the bad change to find out, then
		// deploy the revert.
		ar.Samples = append(ar.Samples, timeIt(func() {
			if _, err := tw.sess.Apply([]incr.Change{incr.BoxSwap(tw.d.FW1, tw.holeFW(grp))}); err != nil {
				panic(err)
			}
			account(ar, tw.sess.LastApply())
			if _, err := tw.sess.Apply([]incr.Change{incr.BoxSwap(tw.d.FW1, tw.cleanFW())}); err != nil {
				panic(err)
			}
			account(ar, tw.sess.LastApply())
		}))

		// Benign change, adopted by both twins.
		pc.Samples = append(pc.Samples, timeIt(func() {
			if _, err := tx.sess.Propose(tx.steeringToggle(grp)); err != nil {
				panic(err)
			}
			if _, err := tx.sess.Commit(); err != nil {
				panic(err)
			}
		}))
		account(pc, tx.sess.LastApply())
		ap.Samples = append(ap.Samples, timeIt(func() {
			if _, err := tw.sess.Apply(tw.steeringToggle(grp)); err != nil {
				panic(err)
			}
		}))
		account(ap, tw.sess.LastApply())
	}
}
