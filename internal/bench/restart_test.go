package bench

import "testing"

// TestRestartFigureSmoke runs a short restart figure and checks the
// structural invariants the artifact consumers rely on: warm and cold
// rows per scenario with a sample per run, the warm lanes genuinely
// served from the verdict store (the figure itself panics on any
// warm-lane solve or verdict mismatch), and the speedup/recovery
// metrics present. Timing RATIOS are asserted only at figure scale
// (vmnbench -fig restart), not here: at smoke scale timing is noise.
func TestRestartFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("restart smoke pays full cold verifications, including the cache scenario")
	}
	const steps, runs = 2, 1
	s := Restart(steps, runs)
	labels := []string{
		"datacenter/warm-restart", "datacenter/cold-start",
		"cachefarm/warm-restart", "cachefarm/cold-start",
	}
	if len(s.Rows) != len(labels) {
		t.Fatalf("want %d rows, got %d", len(labels), len(s.Rows))
	}
	for i, r := range s.Rows {
		if r.Label != labels[i] {
			t.Fatalf("row %d: label %q, want %q", i, r.Label, labels[i])
		}
		if len(r.Samples) != runs {
			t.Fatalf("%s: want %d samples, got %d", r.Label, runs, len(r.Samples))
		}
		if r.Invariants == 0 {
			t.Fatalf("%s: accounting missing: %+v", r.Label, r)
		}
	}
	for _, scn := range []string{"datacenter", "cachefarm"} {
		warm, cold := rowByLabel(t, s, scn+"/warm-restart"), rowByLabel(t, s, scn+"/cold-start")
		if warm.Solves != 0 {
			t.Fatalf("%s: warm restart solved %d times, want 0", scn, warm.Solves)
		}
		if cold.Solves == 0 {
			t.Fatalf("%s: cold start recorded no solves: %+v", scn, cold)
		}
		if warm.CacheHits == 0 {
			t.Fatalf("%s: warm restart recorded no cache hits: %+v", scn, warm)
		}
		if s.Metrics["restart_speedup/"+scn] <= 0 {
			t.Fatalf("%s: speedup metric missing: %v", scn, s.Metrics)
		}
		if s.Metrics["restart_recovered_groups/"+scn] <= 0 {
			t.Fatalf("%s: recovered-groups metric missing: %v", scn, s.Metrics)
		}
	}
}

func rowByLabel(t *testing.T, s Series, label string) Row {
	t.Helper()
	for _, r := range s.Rows {
		if r.Label == label {
			return r
		}
	}
	t.Fatalf("no row labelled %q", label)
	return Row{}
}
