package bench

import (
	"fmt"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
)

// FigCanon measures canonical slice normalization: VerifyAll over
// multi-invariant sets with class-level solving and canonically keyed
// encoding reuse ("canon", the default) against per-check solving
// ("nocanon", core.Options.NoCanon — the PR 3 engine). Symmetry collapsing
// is disabled so the canonical machinery, not the classifier heuristic,
// does the work. Each row records the invariant count, the equivalence
// classes formed (canon rows; Classes/runs is the per-run class count),
// the checks served by witness translation (Shared), the encoding-cache
// hits and builds (CacheHits/Solves — for canon rows Solves is the number
// of encodings actually constructed per run × runs, the denominator of the
// ISSUE's encoding-reuse target), and total solver conflicts. Samples are
// whole VerifyAll wall times.
//
// The headline derived metric: encoding/verdict reuse rate =
// 1 - Solves/(Invariants×runs) — the fraction of checks that never built
// an encoding because their class representative (or an isomorphic slice's
// warm encoding) answered for them. The multitenant nocanon row sits near
// 25%; the canon row must clear 90%.
func FigCanon(runs int) Series {
	s := Series{Fig: "canon", Title: "canonical slice normalization: class-level solving + canonical encoding keys vs per-check solving"}

	type workload struct {
		name string
		mk   func() (*core.Network, []inv.Invariant)
	}
	workloads := []workload{
		{"datacenter", func() (*core.Network, []inv.Invariant) {
			d := NewDatacenter(DCConfig{Groups: churnGroups, HostsPerGroup: 1})
			return d.Net, d.AllIsolationInvariants() // 132 invariants
		}},
		{"multitenant", func() (*core.Network, []inv.Invariant) {
			m := NewMultiTenant(MTConfig{Tenants: 6, PubPerTenant: 1, PrivPerTenant: 1})
			var invs []inv.Invariant
			for a := 0; a < 6; a++ {
				for b := 0; b < 6; b++ {
					if a != b {
						invs = append(invs, m.PrivPrivInvariant(a, b), m.PrivPubInvariant(a, b))
					}
				}
			}
			return m.Net, invs // 60 invariants
		}},
	}

	for _, w := range workloads {
		for _, mode := range []struct {
			label   string
			noCanon bool
		}{{"canon", false}, {"nocanon", true}} {
			net, invs := w.mk()
			row := Row{Label: fmt.Sprintf("%s/%s", w.name, mode.label), X: len(invs)}
			for r := 0; r < runs; r++ {
				v := mustVerifier(net, core.Options{
					Engine: core.EngineSAT, Seed: int64(r), NoCanon: mode.noCanon,
				})
				var reports []core.Report
				row.Samples = append(row.Samples, timeIt(func() {
					var err error
					reports, err = v.VerifyAll(invs, false)
					if err != nil {
						panic(err)
					}
				}))
				row.Invariants = len(reports)
				for _, rep := range reports {
					row.Conflicts += rep.Result.SolverConflicts
				}
				hits, misses := v.EncodingCacheStats()
				row.CacheHits += int(hits)
				row.Solves += int(misses)
				classes, shared, _ := v.CanonStats()
				row.Classes += int(classes)
				row.Shared += int(shared)
			}
			s.Rows = append(s.Rows, row)
		}
	}
	return s
}
