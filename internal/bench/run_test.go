package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRowPercentiles(t *testing.T) {
	r := Row{Samples: []time.Duration{5, 1, 3, 2, 4}}
	if r.Percentile(0) != 1 || r.Percentile(100) != 5 {
		t.Fatalf("min/max wrong: %v %v", r.Percentile(0), r.Percentile(100))
	}
	if r.Percentile(50) != 3 {
		t.Fatalf("median wrong: %v", r.Percentile(50))
	}
	empty := Row{}
	if empty.Percentile(50) != 0 {
		t.Fatal("empty row percentile should be 0")
	}
}

func TestSeriesPrint(t *testing.T) {
	s := Series{Fig: "figX", Title: "test", Rows: []Row{{Label: "a", X: 1, Samples: []time.Duration{time.Millisecond}}}}
	var buf bytes.Buffer
	s.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "figX") || !strings.Contains(out, "a") {
		t.Fatalf("print output wrong: %s", out)
	}
}

// Smoke-run every figure at minimum size: exercises all the generators
// and verifies the verdict assertions built into the runners.
func TestFigureRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow smoke test")
	}
	series := []Series{
		Fig2(3, 1),
		Fig3([]int{3, 4}, 1),
		Fig4([]int{3}, 1),
		Fig5([]int{3}, 1),
		Fig7([]int{3, 6}, 1),
		Fig8([]int{2, 3}, 1),
		Fig9b(1, []int{3, 6}, 1),
		Fig9c(3, []int{1, 2}, 1),
	}
	for _, s := range series {
		if len(s.Rows) == 0 {
			t.Fatalf("%s produced no rows", s.Fig)
		}
		for _, r := range s.Rows {
			if len(r.Samples) == 0 {
				t.Fatalf("%s row %q has no samples", s.Fig, r.Label)
			}
		}
	}
}

// TestFigCanonReuseTarget pins the canonicalization acceptance target:
// the multitenant encoding/verdict reuse rate — the fraction of checks
// that never built an encoding because a class representative or an
// isomorphic warm encoding answered for them — must exceed 90% in canon
// mode (the nocanon baseline sits near 25%).
func TestFigCanonReuseTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("slow figure test")
	}
	s := FigCanon(1)
	rates := map[string]float64{}
	for _, r := range s.Rows {
		if r.Invariants == 0 || len(r.Samples) == 0 {
			t.Fatalf("row %q incomplete: %+v", r.Label, r)
		}
		checks := r.Invariants * len(r.Samples)
		rates[r.Label] = 1 - float64(r.Solves)/float64(checks)
	}
	if got := rates["multitenant/canon"]; got < 0.9 {
		t.Fatalf("multitenant canonical reuse rate %.2f below the 90%% target (rates %v)", got, rates)
	}
	if got := rates["multitenant/nocanon"]; got > 0.5 {
		t.Fatalf("nocanon baseline unexpectedly high (%.2f): the comparison is no longer meaningful", got)
	}
	if got := rates["datacenter/canon"]; got < 0.9 {
		t.Fatalf("datacenter canonical reuse rate %.2f below target", got)
	}
}

// The headline scaling claim: slice verification time is independent of
// network size while whole-network verification grows. Checked on the
// enterprise sweep with a generous factor to stay robust on CI noise.
func TestSlicingScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow shape test")
	}
	s := Fig7([]int{3, 12}, 3)
	var sliceT, wholeSmall, wholeBig time.Duration
	for _, r := range s.Rows {
		if r.Label == "private/slice" {
			sliceT = r.Percentile(50)
		}
		if r.Label == "private/whole" && r.X == 3 {
			wholeSmall = r.Percentile(50)
		}
		if r.Label == "private/whole" && r.X == 12 {
			wholeBig = r.Percentile(50)
		}
	}
	if sliceT == 0 || wholeSmall == 0 || wholeBig == 0 {
		t.Fatalf("missing rows: %v", s.Rows)
	}
	if wholeBig <= wholeSmall {
		t.Logf("warning: whole-network time did not grow (%v vs %v): timing noise?", wholeSmall, wholeBig)
	}
	if sliceT > wholeBig {
		t.Fatalf("slice verification (%v) should not be slower than whole-network at size 12 (%v)", sliceT, wholeBig)
	}
}
