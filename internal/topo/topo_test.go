package topo

import (
	"testing"

	"github.com/netverify/vmn/internal/pkt"
)

func buildSmall(t *testing.T) *Topology {
	t.Helper()
	tp := New()
	h1 := tp.AddHost("h1", pkt.MustParseAddr("10.0.0.1"))
	h2 := tp.AddHost("h2", pkt.MustParseAddr("10.0.0.2"))
	sw := tp.AddSwitch("sw1")
	fw := tp.AddMiddlebox("fw1", "firewall")
	tp.AddLink(h1, sw)
	tp.AddLink(sw, fw)
	tp.AddLink(fw, h2)
	return tp
}

func TestBuildAndLookup(t *testing.T) {
	tp := buildSmall(t)
	if tp.NumNodes() != 4 {
		t.Fatalf("nodes = %d", tp.NumNodes())
	}
	n, ok := tp.ByName("fw1")
	if !ok || n.Kind != Middlebox || n.MBType != "firewall" {
		t.Fatalf("fw lookup: %+v ok=%v", n, ok)
	}
	h, ok := tp.HostByAddr(pkt.MustParseAddr("10.0.0.2"))
	if !ok || h.Name != "h2" {
		t.Fatalf("addr lookup: %+v", h)
	}
	if _, ok := tp.ByName("nope"); ok {
		t.Fatal("phantom lookup")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp := New()
	tp.AddHost("x", 1)
	tp.AddSwitch("x")
}

func TestSelfLinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp := New()
	a := tp.AddSwitch("a")
	tp.AddLink(a, a)
}

func TestDuplicateLinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp := New()
	a, b := tp.AddSwitch("a"), tp.AddSwitch("b")
	tp.AddLink(a, b)
	tp.AddLink(b, a)
}

func TestNeighbors(t *testing.T) {
	tp := buildSmall(t)
	sw := tp.MustByName("sw1")
	nb := tp.Neighbors(sw.ID)
	if len(nb) != 2 {
		t.Fatalf("sw1 neighbors = %v", nb)
	}
}

func TestNodesOfKindAndEdgeNodes(t *testing.T) {
	tp := buildSmall(t)
	if got := len(tp.NodesOfKind(Host)); got != 2 {
		t.Fatalf("hosts = %d", got)
	}
	if got := len(tp.NodesOfKind(Switch)); got != 1 {
		t.Fatalf("switches = %d", got)
	}
	if got := len(tp.EdgeNodes()); got != 3 {
		t.Fatalf("edge nodes = %d", got)
	}
}

func TestValidateOK(t *testing.T) {
	if err := buildSmall(t).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDisconnected(t *testing.T) {
	tp := New()
	a, b := tp.AddSwitch("a"), tp.AddSwitch("b")
	tp.AddLink(a, b)
	tp.AddSwitch("c")
	tp.AddSwitch("d")
	c, _ := tp.ByName("c")
	d, _ := tp.ByName("d")
	tp.AddLink(c.ID, d.ID)
	if err := tp.Validate(); err == nil {
		t.Fatal("expected disconnection error")
	}
}

func TestValidateIsolatedNode(t *testing.T) {
	tp := New()
	tp.AddHost("h", 1)
	tp.AddHost("g", 2)
	if err := tp.Validate(); err == nil {
		t.Fatal("expected error for unlinked nodes")
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := New().Validate(); err == nil {
		t.Fatal("empty topology must not validate")
	}
}

func TestFailureScenario(t *testing.T) {
	f := Failures(3, 1)
	if !f.Failed(3) || !f.Failed(1) || f.Failed(2) {
		t.Fatal("membership wrong")
	}
	if f.Count() != 2 {
		t.Fatalf("count = %d", f.Count())
	}
	ns := f.Nodes()
	if len(ns) != 2 || ns[0] != 1 || ns[1] != 3 {
		t.Fatalf("nodes = %v", ns)
	}
	if NoFailures().Count() != 0 {
		t.Fatal("NoFailures should be empty")
	}
	if f.Key() == NoFailures().Key() {
		t.Fatal("keys should differ")
	}
	if Failures(1, 3).Key() != f.Key() {
		t.Fatal("key must be order-insensitive")
	}
}

func TestSingleFailures(t *testing.T) {
	ss := SingleFailures([]NodeID{5, 7})
	if len(ss) != 3 {
		t.Fatalf("scenarios = %d", len(ss))
	}
	if ss[0].Count() != 0 || !ss[1].Failed(5) || !ss[2].Failed(7) {
		t.Fatal("scenario contents wrong")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Host: "host", Switch: "switch", Middlebox: "middlebox", External: "external"} {
		if k.String() != want {
			t.Fatalf("%v != %s", k, want)
		}
	}
}

func TestExternalNode(t *testing.T) {
	tp := New()
	id := tp.AddExternal("internet", pkt.MustParseAddr("8.8.8.8"))
	n := tp.Node(id)
	if n.Kind != External || !n.IsEdge() {
		t.Fatalf("external node wrong: %+v", n)
	}
}
