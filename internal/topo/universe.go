package topo

// AtomUniverse is the session-lifetime shared atom partition (Delta-net
// style): the full 32-bit destination space divided into contiguous
// intervals ("universe atoms"), refined incrementally as changed prefixes
// arrive. Where AtomSet holds the concrete addresses one check read,
// the universe gives every concrete address a stable interval identity —
// the key the incremental layer's per-atom posting lists (internal/incr)
// are indexed by. Refining by a prefix inserts the prefix's two interval
// boundaries, splitting at most two existing intervals in place instead
// of rebuilding any per-check AtomSet; each split keeps the lower half
// under the parent's identity and mints a fresh identity for the upper
// half, reported to the caller so label sets can be copied (Delta-net's
// copy-on-split: the child conservatively inherits the parent's posting
// list, exact again once the registered groups re-verify).

import (
	"sort"

	"github.com/netverify/vmn/internal/pkt"
)

// AtomID is the stable identity of one universe interval atom. IDs are
// never reused: a split mints a fresh ID for the upper half and the
// parent keeps its own.
type AtomID int32

// AtomSplit reports one in-place interval split: Parent kept the lower
// half of its old interval, Child is the freshly minted upper half.
type AtomSplit struct {
	Parent, Child AtomID
}

// AtomUniverse partitions the address space into interval atoms. The
// zero value is not ready; use NewAtomUniverse. Not safe for concurrent
// mutation.
type AtomUniverse struct {
	// starts[i] is the first address of interval i (starts[0] == 0); the
	// interval runs to starts[i+1]-1 (or the address-space top). ids is
	// position-parallel: the stable AtomID of each interval.
	starts []pkt.Addr
	ids    []AtomID
	next   AtomID
}

// NewAtomUniverse returns the one-atom universe covering the whole
// address space.
func NewAtomUniverse() *AtomUniverse {
	return &AtomUniverse{starts: []pkt.Addr{0}, ids: []AtomID{0}, next: 1}
}

// NumAtoms returns how many atom IDs have been minted (splits only mint,
// never retire, so this is also the interval count).
func (u *AtomUniverse) NumAtoms() int { return int(u.next) }

// RefinePrefix refines the partition so p's address interval is a union
// of whole atoms, splitting at most two intervals in place (one per
// prefix boundary). Every split is reported through onSplit (nil ok)
// before RefinePrefix returns, in boundary order.
func (u *AtomUniverse) RefinePrefix(p pkt.Prefix, onSplit func(AtomSplit)) {
	lo, hi := prefixRange(p)
	u.insertBoundary(lo, onSplit)
	if hi != ^pkt.Addr(0) {
		u.insertBoundary(hi+1, onSplit)
	}
}

// insertBoundary makes b the first address of an interval, splitting the
// interval currently containing it (no-op when b already starts one).
func (u *AtomUniverse) insertBoundary(b pkt.Addr, onSplit func(AtomSplit)) {
	// i = the interval containing b: last index with starts[i] <= b.
	i := sort.Search(len(u.starts), func(i int) bool { return u.starts[i] > b }) - 1
	if u.starts[i] == b {
		return
	}
	child := u.next
	u.next++
	u.starts = append(u.starts, 0)
	u.ids = append(u.ids, 0)
	copy(u.starts[i+2:], u.starts[i+1:])
	copy(u.ids[i+2:], u.ids[i+1:])
	u.starts[i+1] = b
	u.ids[i+1] = child
	if onSplit != nil {
		onSplit(AtomSplit{Parent: u.ids[i], Child: child})
	}
}

// AtomOf returns the ID of the interval atom containing a.
func (u *AtomUniverse) AtomOf(a pkt.Addr) AtomID {
	i := sort.Search(len(u.starts), func(i int) bool { return u.starts[i] > a }) - 1
	return u.ids[i]
}

// AtomsOfPrefix appends to dst the IDs of every interval atom that
// intersects p. After RefinePrefix(p) these are exactly the atoms inside
// p; without prior refinement the two boundary atoms may extend past p
// (a conservative superset, which is what dirtying wants).
func (u *AtomUniverse) AtomsOfPrefix(p pkt.Prefix, dst []AtomID) []AtomID {
	lo, hi := prefixRange(p)
	i := sort.Search(len(u.starts), func(i int) bool { return u.starts[i] > lo }) - 1
	for ; i < len(u.starts) && u.starts[i] <= hi; i++ {
		dst = append(dst, u.ids[i])
	}
	return dst
}

// Clone returns an independent copy (for transactional shadow runs).
func (u *AtomUniverse) Clone() *AtomUniverse {
	return &AtomUniverse{
		starts: append([]pkt.Addr(nil), u.starts...),
		ids:    append([]AtomID(nil), u.ids...),
		next:   u.next,
	}
}
