// Package topo models network topologies for VMN: hosts, switches and
// middleboxes connected by links, plus failure scenarios. The static
// forwarding behaviour over a topology is compiled by internal/tf; the
// mutable (middlebox) behaviour lives in internal/mbox.
package topo

import (
	"fmt"
	"sort"

	"github.com/netverify/vmn/internal/pkt"
)

// NodeID identifies a node within a Topology. IDs are dense and start at 0.
type NodeID int32

// NodeNone is the invalid node.
const NodeNone NodeID = -1

// Kind classifies nodes.
type Kind int8

// Node kinds.
const (
	Host Kind = iota
	Switch
	Middlebox
	// External represents the outside world (e.g. "the Internet"), an
	// edge node that can originate and absorb any traffic.
	External
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Host:
		return "host"
	case Switch:
		return "switch"
	case Middlebox:
		return "middlebox"
	default:
		return "external"
	}
}

// Node is one network element.
type Node struct {
	ID   NodeID
	Name string
	Kind Kind
	// Addr is the address of a Host (or representative address of an
	// External node); unset for switches and middleboxes.
	Addr pkt.Addr
	// MBType names the middlebox model type for Middlebox nodes
	// (e.g. "firewall", "nat", "cache"); resolved by internal/mbox.
	MBType string
}

// IsEdge reports whether the node terminates packets (host/external) or
// processes them (middlebox) — i.e. is not a pure forwarding element.
func (n Node) IsEdge() bool { return n.Kind != Switch }

// Topology is a set of nodes and undirected links. The zero value is empty
// and usable.
type Topology struct {
	nodes  []Node
	byName map[string]NodeID
	byAddr map[pkt.Addr]NodeID
	adj    map[NodeID][]NodeID
}

// New creates an empty topology.
func New() *Topology {
	return &Topology{
		byName: map[string]NodeID{},
		byAddr: map[pkt.Addr]NodeID{},
		adj:    map[NodeID][]NodeID{},
	}
}

func (t *Topology) add(n Node) NodeID {
	if _, ok := t.byName[n.Name]; ok {
		panic(fmt.Sprintf("topo: duplicate node name %q", n.Name))
	}
	n.ID = NodeID(len(t.nodes))
	t.nodes = append(t.nodes, n)
	t.byName[n.Name] = n.ID
	if n.Addr != pkt.AddrNone {
		t.byAddr[n.Addr] = n.ID
	}
	return n.ID
}

// AddHost adds a host with the given unique name and address.
func (t *Topology) AddHost(name string, addr pkt.Addr) NodeID {
	return t.add(Node{Name: name, Kind: Host, Addr: addr})
}

// AddSwitch adds a switch.
func (t *Topology) AddSwitch(name string) NodeID {
	return t.add(Node{Name: name, Kind: Switch})
}

// AddMiddlebox adds a middlebox of the given model type.
func (t *Topology) AddMiddlebox(name, mbType string) NodeID {
	return t.add(Node{Name: name, Kind: Middlebox, MBType: mbType})
}

// AddExternal adds an external world node (e.g. the Internet) with a
// representative address.
func (t *Topology) AddExternal(name string, addr pkt.Addr) NodeID {
	return t.add(Node{Name: name, Kind: External, Addr: addr})
}

// AddLink connects two existing nodes bidirectionally. Self-links and
// duplicate links are rejected.
func (t *Topology) AddLink(a, b NodeID) {
	if a == b {
		panic("topo: self-link")
	}
	t.mustNode(a)
	t.mustNode(b)
	for _, n := range t.adj[a] {
		if n == b {
			panic(fmt.Sprintf("topo: duplicate link %s-%s", t.nodes[a].Name, t.nodes[b].Name))
		}
	}
	t.adj[a] = append(t.adj[a], b)
	t.adj[b] = append(t.adj[b], a)
}

func (t *Topology) mustNode(id NodeID) Node {
	if id < 0 || int(id) >= len(t.nodes) {
		panic(fmt.Sprintf("topo: unknown node id %d", id))
	}
	return t.nodes[id]
}

// Node returns the node with the given id.
func (t *Topology) Node(id NodeID) Node { return t.mustNode(id) }

// NumNodes returns the number of nodes.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// ByName looks a node up by name.
func (t *Topology) ByName(name string) (Node, bool) {
	id, ok := t.byName[name]
	if !ok {
		return Node{}, false
	}
	return t.nodes[id], true
}

// MustByName looks a node up by name, panicking if absent.
func (t *Topology) MustByName(name string) Node {
	n, ok := t.ByName(name)
	if !ok {
		panic(fmt.Sprintf("topo: no node named %q", name))
	}
	return n
}

// HostByAddr returns the host/external node owning addr.
func (t *Topology) HostByAddr(a pkt.Addr) (Node, bool) {
	id, ok := t.byAddr[a]
	if !ok {
		return Node{}, false
	}
	return t.nodes[id], true
}

// Neighbors returns the adjacent nodes of id (shared slice; do not mutate).
func (t *Topology) Neighbors(id NodeID) []NodeID { return t.adj[id] }

// Nodes returns all nodes (copy).
func (t *Topology) Nodes() []Node { return append([]Node(nil), t.nodes...) }

// NodesOfKind returns the IDs of all nodes of kind k, in ID order.
func (t *Topology) NodesOfKind(k Kind) []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if n.Kind == k {
			out = append(out, n.ID)
		}
	}
	return out
}

// EdgeNodes returns all non-switch nodes (hosts, externals, middleboxes).
func (t *Topology) EdgeNodes() []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if n.IsEdge() {
			out = append(out, n.ID)
		}
	}
	return out
}

// Validate checks structural well-formedness: every host and middlebox is
// linked, and the topology is connected (over non-failed nodes).
func (t *Topology) Validate() error {
	if len(t.nodes) == 0 {
		return fmt.Errorf("topo: empty topology")
	}
	for _, n := range t.nodes {
		if len(t.adj[n.ID]) == 0 && len(t.nodes) > 1 {
			return fmt.Errorf("topo: node %q has no links", n.Name)
		}
	}
	// Connectivity via BFS from node 0.
	seen := make([]bool, len(t.nodes))
	queue := []NodeID{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range t.adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				count++
				queue = append(queue, nb)
			}
		}
	}
	if count != len(t.nodes) {
		return fmt.Errorf("topo: topology is disconnected (%d of %d reachable)", count, len(t.nodes))
	}
	return nil
}

// FailureScenario is a set of failed nodes. The empty scenario is the
// fault-free network.
type FailureScenario struct {
	failed map[NodeID]bool
}

// NoFailures is the empty scenario.
func NoFailures() FailureScenario { return FailureScenario{} }

// Failures builds a scenario in which exactly the given nodes are down.
func Failures(nodes ...NodeID) FailureScenario {
	f := FailureScenario{failed: map[NodeID]bool{}}
	for _, n := range nodes {
		f.failed[n] = true
	}
	return f
}

// Failed reports whether node n is down in this scenario.
func (f FailureScenario) Failed(n NodeID) bool { return f.failed[n] }

// Count returns the number of failed nodes.
func (f FailureScenario) Count() int { return len(f.failed) }

// Nodes returns the failed nodes in ID order.
func (f FailureScenario) Nodes() []NodeID {
	out := make([]NodeID, 0, len(f.failed))
	for n := range f.failed {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Key returns a canonical string key for map indexing.
func (f FailureScenario) Key() string {
	s := ""
	for _, n := range f.Nodes() {
		s += fmt.Sprintf("%d,", n)
	}
	return s
}

// SingleFailures enumerates the fault-free scenario plus one scenario per
// given node failing alone. This is the paper's "verify under all single
// failures" mode.
func SingleFailures(candidates []NodeID) []FailureScenario {
	out := []FailureScenario{NoFailures()}
	for _, n := range candidates {
		out = append(out, Failures(n))
	}
	return out
}
