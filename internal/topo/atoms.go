package topo

// Address atoms for fine-grained dependency tracking (Delta-net style, at
// the granularity this repo's finite packet alphabets afford): a check's
// forwarding-state read-set is a set of concrete destination addresses
// ("atoms") looked up per node, and a FIB update dirties the check only if
// a changed rule's prefix covers one of those atoms. AtomSet is the sorted
// set representation plus the prefix-intersection predicate the
// incremental layer's dependency index (internal/incr) screens changed
// rules against.

import (
	"sort"

	"github.com/netverify/vmn/internal/pkt"
)

// AtomSet is a sorted, duplicate-free set of concrete address atoms.
// The zero value is the empty set.
type AtomSet []pkt.Addr

// NewAtomSet builds an AtomSet from addrs (copied, sorted, deduplicated;
// the zero address AddrNone is dropped — it marks "unset", not an atom).
func NewAtomSet(addrs []pkt.Addr) AtomSet {
	s := make(AtomSet, 0, len(addrs))
	for _, a := range addrs {
		if a != pkt.AddrNone {
			s = append(s, a)
		}
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	for i, a := range s {
		if i == 0 || a != s[i-1] {
			out = append(out, a)
		}
	}
	return out
}

// Contains reports whether a is in the set.
func (s AtomSet) Contains(a pkt.Addr) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= a })
	return i < len(s) && s[i] == a
}

// prefixRange returns the inclusive address interval p covers.
func prefixRange(p pkt.Prefix) (lo, hi pkt.Addr) {
	if p.Len <= 0 {
		return 0, ^pkt.Addr(0)
	}
	if p.Len >= 32 {
		return p.Addr, p.Addr
	}
	shift := uint(32 - p.Len)
	lo = p.Addr >> shift << shift
	return lo, lo | (1<<shift - 1)
}

// IntersectsPrefix reports whether any atom of s falls within p — whether
// a rule matching p could ever fire for a packet whose destination is one
// of these atoms. A prefix covers one contiguous address interval, so the
// test is a single binary search.
func (s AtomSet) IntersectsPrefix(p pkt.Prefix) bool {
	lo, hi := prefixRange(p)
	i := sort.Search(len(s), func(i int) bool { return s[i] >= lo })
	return i < len(s) && s[i] <= hi
}

// Union returns the union of s and o (s or o themselves when one contains
// the other end-to-end, a fresh set otherwise). The subset fast path is
// what lets the shared-universe build in internal/incr union a group's
// per-scenario read sets without allocating when the scenarios read the
// same atoms — the common case.
func (s AtomSet) Union(o AtomSet) AtomSet {
	if len(o) == 0 {
		return s
	}
	if len(s) == 0 {
		return o
	}
	if len(s) >= len(o) && s.containsAll(o) {
		return s
	}
	if len(o) > len(s) && o.containsAll(s) {
		return o
	}
	out := make(AtomSet, 0, len(s)+len(o))
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] < o[j]:
			out = append(out, s[i])
			i++
		case s[i] > o[j]:
			out = append(out, o[j])
			j++
		default:
			out = append(out, s[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, s[i:]...)
	return append(out, o[j:]...)
}

// containsAll reports o ⊆ s by one linear merge walk (both sets are
// sorted and duplicate-free).
func (s AtomSet) containsAll(o AtomSet) bool {
	i := 0
	for _, a := range o {
		for i < len(s) && s[i] < a {
			i++
		}
		if i >= len(s) || s[i] != a {
			return false
		}
		i++
	}
	return true
}
