package topo

import (
	"testing"

	"github.com/netverify/vmn/internal/pkt"
)

func pfx(s string, l int) pkt.Prefix { return pkt.Prefix{Addr: addr(s), Len: l} }

func TestAtomUniverseRefine(t *testing.T) {
	u := NewAtomUniverse()
	if u.NumAtoms() != 1 {
		t.Fatalf("fresh universe has %d atoms, want 1", u.NumAtoms())
	}
	root := u.AtomOf(addr("10.0.0.1"))
	if root != u.AtomOf(addr("192.168.0.1")) {
		t.Fatal("fresh universe must map every address to the one root atom")
	}

	var splits []AtomSplit
	u.RefinePrefix(pfx("10.0.0.0", 24), func(sp AtomSplit) { splits = append(splits, sp) })
	if len(splits) != 2 {
		t.Fatalf("refining a mid-space /24 must split twice, got %d", len(splits))
	}
	for _, sp := range splits {
		if sp.Child == sp.Parent {
			t.Fatalf("split child must be fresh: %+v", sp)
		}
	}
	in := u.AtomOf(addr("10.0.0.128"))
	below := u.AtomOf(addr("9.255.255.255"))
	above := u.AtomOf(addr("10.0.1.0"))
	if in == below || in == above {
		t.Fatalf("prefix interior must be its own atom: in=%d below=%d above=%d", in, below, above)
	}
	if below != root {
		t.Fatal("lower half of a split keeps the parent identity")
	}
	if got := u.AtomsOfPrefix(pfx("10.0.0.0", 24), nil); len(got) != 1 || got[0] != in {
		t.Fatalf("AtomsOfPrefix after refine = %v, want [%d]", got, in)
	}

	// Re-refining the same prefix is a no-op.
	u.RefinePrefix(pfx("10.0.0.0", 24), func(sp AtomSplit) {
		t.Fatalf("re-refine must not split, got %+v", sp)
	})

	// A nested, more specific prefix splits the interior atom once per new
	// boundary, and both halves stay inside the /24's range.
	before := u.NumAtoms()
	u.RefinePrefix(pfx("10.0.0.128", 25), nil)
	if u.NumAtoms() != before+1 {
		t.Fatalf("nested /25 sharing the parent's top boundary must split once, got %d new",
			u.NumAtoms()-before)
	}
	got := u.AtomsOfPrefix(pfx("10.0.0.0", 24), nil)
	if len(got) != 2 {
		t.Fatalf("the /24 must now be two atoms, got %v", got)
	}
	if got[0] != in {
		t.Fatal("the lower half must keep the pre-split identity")
	}
}

func TestAtomUniverseEdges(t *testing.T) {
	u := NewAtomUniverse()
	u.RefinePrefix(pkt.Prefix{Len: 0}, func(sp AtomSplit) {
		t.Fatalf("the default route covers everything; no split expected, got %+v", sp)
	})
	u.RefinePrefix(pfx("255.255.255.255", 32), nil) // top host: only a low boundary exists
	u.RefinePrefix(pfx("0.0.0.0", 32), nil)         // bottom host: only a high boundary exists
	if u.AtomOf(addr("0.0.0.0")) == u.AtomOf(addr("0.0.0.1")) {
		t.Fatal("bottom host prefix not isolated")
	}
	if u.AtomOf(addr("255.255.255.255")) == u.AtomOf(addr("255.255.255.254")) {
		t.Fatal("top host prefix not isolated")
	}
	if got := u.AtomsOfPrefix(pfx("255.255.255.255", 32), nil); len(got) != 1 {
		t.Fatalf("top host prefix maps to %v, want one atom", got)
	}
}

func TestAtomUniverseClone(t *testing.T) {
	u := NewAtomUniverse()
	u.RefinePrefix(pfx("10.0.0.0", 24), nil)
	c := u.Clone()
	c.RefinePrefix(pfx("10.0.0.0", 25), nil)
	if u.NumAtoms() == c.NumAtoms() {
		t.Fatal("clone refinement must not alias the original")
	}
	if u.AtomOf(addr("10.0.0.1")) != c.AtomOf(addr("10.0.0.1")) {
		t.Fatal("pre-clone atoms must keep their identity in the clone")
	}
}

func TestAtomSetUnionSubsetReuse(t *testing.T) {
	a := NewAtomSet([]pkt.Addr{addr("10.0.0.1"), addr("10.0.0.3"), addr("10.0.0.5")})
	sub := NewAtomSet([]pkt.Addr{addr("10.0.0.1"), addr("10.0.0.5")})
	if got := a.Union(sub); &got[0] != &a[0] {
		t.Fatal("union with a subset must return the superset unchanged")
	}
	if got := sub.Union(a); &got[0] != &a[0] {
		t.Fatal("subset.Union(superset) must return the superset unchanged")
	}
	dis := NewAtomSet([]pkt.Addr{addr("10.0.0.2")})
	if got := a.Union(dis); len(got) != 4 {
		t.Fatalf("non-subset union wrong: %v", got)
	}
}

// BenchmarkAtomSetUnionSubset is the allocation regression guard for the
// Union fast paths: a union where one side contains the other must not
// allocate.
func BenchmarkAtomSetUnionSubset(b *testing.B) {
	var addrs []pkt.Addr
	for i := 0; i < 64; i++ {
		addrs = append(addrs, pkt.Addr(0x0a000000+i*7))
	}
	super := NewAtomSet(addrs)
	sub := NewAtomSet(addrs[:32])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := super.Union(sub); len(got) != len(super) {
			b.Fatal("union wrong")
		}
		if got := sub.Union(super); len(got) != len(super) {
			b.Fatal("union wrong")
		}
	}
	b.StopTimer()
	if testing.AllocsPerRun(100, func() { super.Union(sub) }) != 0 {
		b.Fatal("subset union must not allocate")
	}
}
