package topo

import (
	"testing"

	"github.com/netverify/vmn/internal/pkt"
)

func addr(s string) pkt.Addr { return pkt.MustParseAddr(s) }

func TestAtomSetBasics(t *testing.T) {
	s := NewAtomSet([]pkt.Addr{addr("10.1.0.1"), addr("10.0.0.1"), addr("10.1.0.1"), pkt.AddrNone})
	if len(s) != 2 {
		t.Fatalf("dedup/drop-none failed: %v", s)
	}
	if s[0] != addr("10.0.0.1") || s[1] != addr("10.1.0.1") {
		t.Fatalf("not sorted: %v", s)
	}
	if !s.Contains(addr("10.0.0.1")) || s.Contains(addr("10.2.0.1")) {
		t.Fatal("Contains wrong")
	}
}

func TestAtomSetIntersectsPrefix(t *testing.T) {
	s := NewAtomSet([]pkt.Addr{addr("10.0.0.1"), addr("10.1.0.1"), addr("10.3.255.255")})
	cases := []struct {
		pfx  string
		len  int
		want bool
	}{
		{"10.0.0.0", 24, true},   // covers 10.0.0.1
		{"10.0.0.0", 32, false},  // exact miss
		{"10.0.0.1", 32, true},   // exact hit
		{"10.2.0.0", 16, false},  // between atoms
		{"10.3.0.0", 16, true},   // covers the top atom at its last address
		{"0.0.0.0", 0, true},     // the default route covers everything
		{"10.0.0.0", 14, true},   // wide prefix spanning several atoms
		{"11.0.0.0", 8, false},   // above all atoms
		{"9.255.0.0", 16, false}, // below all atoms
	}
	for _, c := range cases {
		p := pkt.Prefix{Addr: addr(c.pfx), Len: c.len}
		if got := s.IntersectsPrefix(p); got != c.want {
			t.Errorf("IntersectsPrefix(%s/%d) = %v, want %v", c.pfx, c.len, got, c.want)
		}
	}
	if AtomSet(nil).IntersectsPrefix(pkt.Prefix{}) {
		t.Error("empty set intersects nothing")
	}
}

func TestAtomSetUnion(t *testing.T) {
	a := NewAtomSet([]pkt.Addr{addr("10.0.0.1"), addr("10.0.0.3")})
	b := NewAtomSet([]pkt.Addr{addr("10.0.0.2"), addr("10.0.0.3")})
	u := a.Union(b)
	if len(u) != 3 || u[0] != addr("10.0.0.1") || u[1] != addr("10.0.0.2") || u[2] != addr("10.0.0.3") {
		t.Fatalf("union wrong: %v", u)
	}
	if got := a.Union(nil); len(got) != len(a) {
		t.Fatal("union with empty must keep the set")
	}
	if got := AtomSet(nil).Union(b); len(got) != len(b) {
		t.Fatal("empty union must return the other set")
	}
}
