package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF formula in DIMACS format into a fresh solver.
// Comment lines ("c ...") are skipped; the "p cnf V C" header is optional
// but, when present, pre-allocates variables. Literals are 1-based signed
// integers; each clause is terminated by 0.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	s := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var cur []Lit
	ensure := func(v int) {
		for s.NumVars() < v {
			s.NewVar()
		}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: malformed DIMACS header %q", line)
			}
			nv, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("sat: bad variable count in %q", line)
			}
			ensure(nv)
			continue
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: bad literal %q", tok)
			}
			if n == 0 {
				s.AddClause(cur...)
				cur = cur[:0]
				continue
			}
			v := n
			if v < 0 {
				v = -v
			}
			ensure(v)
			cur = append(cur, MkLit(Var(v-1), n < 0))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		s.AddClause(cur...)
	}
	return s, nil
}

// WriteDIMACS serializes the solver's problem clauses (not learnt clauses)
// in DIMACS format. Level-0 unit assignments are emitted as unit clauses so
// the output is equisatisfiable with the solver state.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	units := 0
	if len(s.trailLim) == 0 {
		units = len(s.trail)
	} else {
		units = s.trailLim[0]
	}
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", s.NumVars(), len(s.clauses)+units); err != nil {
		return err
	}
	writeLit := func(l Lit) error {
		n := int(l.Var()) + 1
		if l.Sign() {
			n = -n
		}
		_, err := fmt.Fprintf(bw, "%d ", n)
		return err
	}
	for i := 0; i < units; i++ {
		if err := writeLit(s.trail[i]); err != nil {
			return err
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	for _, c := range s.clauses {
		for _, l := range c.lits {
			if err := writeLit(l); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
