package sat

import (
	"math/rand/v2"
	"slices"
	"sort"
)

// Status is the result of a Solve call.
type Status int8

// Solve outcomes.
const (
	// Unsat means the formula (under the given assumptions) has no model.
	Unsat Status = iota
	// Sat means a model was found; retrieve it with Model or Value.
	Sat
	// Unknown means the conflict budget was exhausted before a verdict.
	Unknown
)

// String returns "UNSAT", "SAT" or "UNKNOWN".
func (s Status) String() string {
	switch s {
	case Unsat:
		return "UNSAT"
	case Sat:
		return "SAT"
	default:
		return "UNKNOWN"
	}
}

// Stats counts solver work. It is reset by Reset but accumulates across
// Solve calls on the same instance.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learnt       int64
	DeletedCls   int64
	MinimizedLit int64
}

// Solver is a CDCL SAT solver. The zero value is not usable; create
// instances with New. A Solver is not safe for concurrent use.
type Solver struct {
	clauses []*clause
	learnts []*clause
	watches [][]watcher // indexed by Lit

	assigns  []Tribool // per Var
	polarity []bool    // saved phase per Var: last assigned sign
	activity []float64
	order    *varOrder
	varInc   float64
	varDecay float64

	claInc   float64
	claDecay float64

	trail    []Lit
	trailLim []int
	reason   []*clause
	level    []int32
	qhead    int

	seen      []byte
	minimStk  []Lit
	toClear   []Lit
	confLits  []Lit // final conflict clause over assumptions
	rng       *rand.Rand
	randFreq  float64
	ok        bool
	model     []Tribool
	maxLearnt float64

	// budget; 0 means unlimited. conflBase is the conflict count at the
	// start of the current Solve call, so the budget is per call rather
	// than cumulative across an incrementally reused instance.
	maxConflicts int64
	conflBase    int64

	stats Stats
}

// New creates an empty solver with default parameters.
func New() *Solver {
	s := &Solver{
		varInc:   1.0,
		varDecay: 0.95,
		claInc:   1.0,
		claDecay: 0.999,
		randFreq: 0.0,
		ok:       true,
		rng:      newRng(91648253),
	}
	s.order = newVarOrder(&s.activity)
	return s
}

// newRng builds the branching rng. PCG has two words of state, so seeding
// is free — the legacy math/rand source initialized a 607-word table per
// solver, which showed up as real time when an encoding cache constructs
// many solver instances.
func newRng(seed int64) *rand.Rand {
	return rand.New(rand.NewPCG(uint64(seed), 0x9e3779b97f4a7c15))
}

// SetSeed reseeds the random source used for randomized branching. Distinct
// seeds give the run-to-run variance that the paper observes across Z3 runs.
func (s *Solver) SetSeed(seed int64) { s.rng = newRng(seed) }

// SetRandomBranchFreq sets the fraction of decisions taken at random
// instead of by VSIDS activity (0 disables; typical values are <= 0.05).
func (s *Solver) SetRandomBranchFreq(f float64) { s.randFreq = f }

// SetMaxConflicts bounds the number of conflicts explored by each
// subsequent Solve call; when a call exceeds the budget it returns Unknown.
// Zero means unlimited. The budget is per call — not cumulative — so a
// solver instance reused across many queries (the incremental encoding
// path) gives every query the same allowance. This mirrors the timeout
// discipline the paper describes for SMT solvers.
func (s *Solver) SetMaxConflicts(n int64) { s.maxConflicts = n }

// budgetExceeded reports whether the current Solve call burned through its
// conflict allowance.
func (s *Solver) budgetExceeded() bool {
	return s.maxConflicts > 0 && s.stats.Conflicts-s.conflBase >= s.maxConflicts
}

// Stats returns a copy of the work counters.
func (s *Solver) Stats() Stats { return s.stats }

// PreferPhase biases future branching on l's variable toward the phase
// that makes l true, overriding the saved phase. Callers reusing one
// solver across many queries use this to neutralize phase memory from
// earlier queries where a cold-start-like search is preferable (e.g.
// canonical witness extraction benefits from first models close to the
// lexicographic minimum).
func (s *Solver) PreferPhase(l Lit) { s.polarity[l.Var()] = l.Sign() }

// NumVars returns the number of variables allocated so far.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem (non-learnt) clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NewVar allocates a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, Undef)
	s.polarity = append(s.polarity, true) // default phase: false
	s.activity = append(s.activity, 0)
	s.reason = append(s.reason, nil)
	s.level = append(s.level, 0)
	s.seen = append(s.seen, 0)
	s.watches = append(s.watches, nil, nil)
	s.order.grow(len(s.assigns))
	s.order.push(v)
	return v
}

func (s *Solver) litValue(l Lit) Tribool {
	return s.assigns[l.Var()].xorSign(l.Sign())
}

// Value returns the value of v in the most recent model (after a Sat
// result), or Undef if no model is available.
func (s *Solver) Value(v Var) Tribool {
	if int(v) >= len(s.model) {
		return Undef
	}
	return s.model[v]
}

// Model returns the assignment found by the last successful Solve. The
// slice is indexed by Var and owned by the solver.
func (s *Solver) Model() []Tribool { return s.model }

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause over the given literals. It returns false if the
// solver became inconsistent (an empty clause was derived at level 0); once
// false, all subsequent Solve calls return Unsat. Duplicate literals are
// merged and tautologies are silently accepted.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause called above decision level 0")
	}
	// Sort, dedupe, drop level-0 false literals, detect tautology/satisfied.
	// Clauses are overwhelmingly short, so insertion sort beats the
	// reflection-based sort.Slice that used to dominate clause loading.
	ls := append([]Lit(nil), lits...)
	if len(ls) <= 16 {
		for i := 1; i < len(ls); i++ {
			for j := i; j > 0 && ls[j] < ls[j-1]; j-- {
				ls[j], ls[j-1] = ls[j-1], ls[j]
			}
		}
	} else {
		slices.Sort(ls)
	}
	out := ls[:0]
	var prev Lit = LitUndef
	for _, l := range ls {
		if int(l.Var()) >= len(s.assigns) {
			panic("sat: clause references unallocated variable")
		}
		switch {
		case s.litValue(l) == True:
			return true // clause already satisfied at level 0
		case s.litValue(l) == False:
			continue // literal can never help
		case l == prev:
			continue // duplicate
		case prev != LitUndef && l == prev.Neg():
			return true // tautology p ∨ ¬p
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		s.ok = s.propagate() == nil
		return s.ok
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0]] = append(s.watches[c.lits[0]], watcher{c, c.lits[1]})
	s.watches[c.lits[1]] = append(s.watches[c.lits[1]], watcher{c, c.lits[0]})
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Sign() {
		s.assigns[v] = False
	} else {
		s.assigns[v] = True
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation over the watch lists and returns the
// conflicting clause, or nil if a fixpoint was reached without conflict.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is now true
		s.qhead++
		s.stats.Propagations++
		falseLit := p.Neg()
		ws := s.watches[falseLit]
		kept := ws[:0]
		var confl *clause
	scan:
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			if s.litValue(w.blocker) == True {
				kept = append(kept, w)
				continue
			}
			c := w.c
			if c.deleted {
				continue // drop watcher of a removed clause
			}
			// Normalize: the false literal sits at position 1.
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.litValue(first) == True {
				kept = append(kept, watcher{c, first})
				continue
			}
			// Look for a replacement watch.
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != False {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1]] = append(s.watches[c.lits[1]], watcher{c, first})
					continue scan
				}
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c, first})
			if s.litValue(first) == False {
				confl = c
				s.qhead = len(s.trail)
				// Keep the remaining watchers untouched.
				kept = append(kept, ws[wi+1:]...)
				break
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[falseLit] = kept
		if confl != nil {
			return confl
		}
	}
	return nil
}

func (s *Solver) varBump(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.bump(v)
}

func (s *Solver) varDecayActivity() { s.varInc /= s.varDecay }

func (s *Solver) claBump(c *clause) {
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, lc := range s.learnts {
			lc.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) claDecayActivity() { s.claInc /= s.claDecay }

// analyze derives a first-UIP learnt clause from the conflict confl.
// It returns the learnt literals (asserting literal first) and the level to
// backjump to.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{LitUndef} // slot 0 reserved for the asserting literal
	pathC := 0
	p := LitUndef
	idx := len(s.trail) - 1

	for {
		s.claBump(confl)
		start := 0
		if p != LitUndef {
			start = 1 // lits[0] of a reason clause is the propagated literal
		}
		for _, q := range confl.lits[start:] {
			v := q.Var()
			if s.seen[v] == 0 && s.level[v] > 0 {
				s.varBump(v)
				s.seen[v] = 1
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for s.seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		confl = s.reason[p.Var()]
		s.seen[p.Var()] = 0
		pathC--
		if pathC == 0 {
			break
		}
	}
	learnt[0] = p.Neg()

	// Clause minimization: drop literals implied by the rest of the clause.
	s.toClear = s.toClear[:0]
	for _, l := range learnt {
		s.seen[l.Var()] = 1
		s.toClear = append(s.toClear, l)
	}
	out := learnt[:1]
	for _, l := range learnt[1:] {
		if s.reason[l.Var()] == nil || !s.litRedundant(l) {
			out = append(out, l)
		} else {
			s.stats.MinimizedLit++
		}
	}
	learnt = out
	for _, l := range s.toClear {
		s.seen[l.Var()] = 0
	}

	// Backjump level: highest level below the current one.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}
	return learnt, btLevel
}

// litRedundant reports whether l is implied by the other literals of the
// clause being minimized (all marked in seen). It walks the implication
// graph; any antecedent literal that is neither seen nor removable makes l
// necessary.
func (s *Solver) litRedundant(l Lit) bool {
	s.minimStk = s.minimStk[:0]
	s.minimStk = append(s.minimStk, l)
	top := len(s.toClear)
	for len(s.minimStk) > 0 {
		p := s.minimStk[len(s.minimStk)-1]
		s.minimStk = s.minimStk[:len(s.minimStk)-1]
		c := s.reason[p.Var()]
		for _, q := range c.lits[1:] {
			v := q.Var()
			if s.seen[v] != 0 || s.level[v] == 0 {
				continue
			}
			if s.reason[v] == nil {
				// Reached a decision not in the clause: l is needed.
				for _, r := range s.toClear[top:] {
					s.seen[r.Var()] = 0
				}
				s.toClear = s.toClear[:top]
				return false
			}
			s.seen[v] = 1
			s.toClear = append(s.toClear, q)
			s.minimStk = append(s.minimStk, q)
		}
	}
	return true
}

// cancelUntil undoes all assignments above the given decision level,
// saving phases for future branching.
func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.assigns[v] == False
		s.assigns[v] = Undef
		s.reason[v] = nil
		s.order.push(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranchLit() Lit {
	// Occasional random decision for search diversity.
	if s.randFreq > 0 && s.rng.Float64() < s.randFreq && !s.order.empty() {
		v := s.order.heap[s.rng.IntN(len(s.order.heap))]
		if s.assigns[v] == Undef {
			return MkLit(v, s.polarity[v])
		}
	}
	for !s.order.empty() {
		v := s.order.pop()
		if s.assigns[v] == Undef {
			return MkLit(v, s.polarity[v])
		}
	}
	return LitUndef
}

// locked reports whether c is the reason for its first literal's current
// assignment (such clauses must not be deleted).
func (s *Solver) locked(c *clause) bool {
	l := c.lits[0]
	return s.litValue(l) == True && s.reason[l.Var()] == c
}

// reduceDB removes roughly half of the learnt clauses, preferring
// low-activity, high-LBD ones. Binary and locked clauses are kept.
func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool {
		a, b := s.learnts[i], s.learnts[j]
		if (a.lbd <= 2) != (b.lbd <= 2) {
			return a.lbd <= 2 // glue clauses first (kept)
		}
		return a.activity > b.activity
	})
	keep := s.learnts[:0]
	limit := len(s.learnts) / 2
	for i, c := range s.learnts {
		if i < limit || c.len() == 2 || c.lbd <= 2 || s.locked(c) {
			keep = append(keep, c)
			continue
		}
		c.deleted = true
		s.stats.DeletedCls++
	}
	s.learnts = keep
}

func (s *Solver) computeLBD(lits []Lit) int32 {
	levels := map[int32]struct{}{}
	for _, l := range lits {
		levels[s.level[l.Var()]] = struct{}{}
	}
	return int32(len(levels))
}

// luby returns the i-th element (1-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
func luby(i int64) int64 {
	x := i - 1
	size, seq := int64(1), uint(0)
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return 1 << seq
}

// search runs CDCL until a verdict or until nConflicts conflicts occurred
// (then returns Unknown to trigger a restart).
func (s *Solver) search(nConflicts int64, assumps []Lit) Status {
	conflicts := int64(0)
	for {
		confl := s.propagate()
		if confl != nil {
			s.stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true, lbd: s.computeLBD(learnt)}
				s.learnts = append(s.learnts, c)
				s.stats.Learnt++
				s.attach(c)
				s.claBump(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.varDecayActivity()
			s.claDecayActivity()
			continue
		}
		// No conflict.
		if conflicts >= nConflicts {
			s.cancelUntil(0)
			return Unknown
		}
		if s.budgetExceeded() {
			s.cancelUntil(0)
			return Unknown
		}
		if float64(len(s.learnts)) >= s.maxLearnt {
			s.reduceDB()
		}
		// Select the next decision: pending assumptions first.
		next := LitUndef
		for s.decisionLevel() < len(assumps) {
			a := assumps[s.decisionLevel()]
			switch s.litValue(a) {
			case True:
				// Already satisfied: open an empty level to keep indices aligned.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case False:
				s.analyzeFinal(a.Neg())
				return Unsat
			default:
				next = a
			}
			break
		}
		if next == LitUndef {
			next = s.pickBranchLit()
			if next == LitUndef {
				// All variables assigned: model found.
				s.model = append(s.model[:0], s.assigns...)
				return Sat
			}
			s.stats.Decisions++
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, nil)
	}
}

// analyzeFinal computes the subset of assumptions responsible for
// falsifying literal p; it is retrievable via ConflictLits.
func (s *Solver) analyzeFinal(p Lit) {
	s.confLits = s.confLits[:0]
	s.confLits = append(s.confLits, p)
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = 1
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if s.seen[v] == 0 {
			continue
		}
		if s.reason[v] == nil {
			s.confLits = append(s.confLits, s.trail[i].Neg())
		} else {
			for _, l := range s.reason[v].lits[1:] {
				if s.level[l.Var()] > 0 {
					s.seen[l.Var()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
	s.seen[p.Var()] = 0
}

// ConflictLits returns the final conflict clause over the assumptions from
// the last Unsat answer of SolveAssuming (the analogue of an unsat core).
func (s *Solver) ConflictLits() []Lit { return s.confLits }

// Solve decides the formula added so far.
func (s *Solver) Solve() Status { return s.SolveAssuming(nil) }

// SolveAssuming decides the formula under the given assumption literals.
// When the result is Unsat, ConflictLits reports which assumptions clash.
//
// Solver state — learnt clauses, variable activity, saved phases — persists
// across calls, and learnt clauses are always implied by the problem
// clauses alone (assumptions enter conflict analysis as decisions, so any
// learnt clause that depends on an assumption contains its negation as a
// literal). Callers may therefore interleave SolveAssuming calls for many
// related queries on one instance and each query warms up the next.
func (s *Solver) SolveAssuming(assumps []Lit) Status {
	if !s.ok {
		return Unsat
	}
	s.model = s.model[:0]
	s.conflBase = s.stats.Conflicts
	s.maxLearnt = float64(len(s.clauses))/3 + 100
	var restarts int64
	for {
		budget := 100 * luby(restarts+1)
		st := s.search(budget, assumps)
		if st != Unknown {
			s.cancelUntil(0)
			return st
		}
		if s.budgetExceeded() {
			s.cancelUntil(0)
			return Unknown
		}
		restarts++
		s.stats.Restarts++
		s.maxLearnt *= 1.05
	}
}

// Release permanently asserts the given literals (typically negated
// activation literals of retired queries) and garbage-collects every
// clause they satisfy. An activation-literal discipline — assert query
// clauses as (¬a ∨ C), solve with assumption a — combined with
// Release(¬a) removes a retired query's clauses, and any learnt clauses
// conditioned on it, from the clause database for good. Must be called
// between Solve calls (at decision level 0). Returns false if the solver
// became inconsistent.
func (s *Solver) Release(lits ...Lit) bool {
	for _, l := range lits {
		if !s.AddClause(l) {
			return false
		}
	}
	s.gcSatisfied()
	return s.ok
}

// gcSatisfied removes all clauses satisfied at decision level 0 from the
// clause database. Watch lists drop their watchers lazily (propagation
// skips and discards deleted clauses), matching reduceDB's mechanism.
func (s *Solver) gcSatisfied() {
	if s.decisionLevel() != 0 {
		panic("sat: gcSatisfied called above decision level 0")
	}
	satisfied := func(c *clause) bool {
		for _, l := range c.lits {
			if s.litValue(l) == True {
				return true
			}
		}
		return false
	}
	sweep := func(cls []*clause) []*clause {
		keep := cls[:0]
		for _, c := range cls {
			if satisfied(c) {
				c.deleted = true
				s.stats.DeletedCls++
				continue
			}
			keep = append(keep, c)
		}
		return keep
	}
	s.clauses = sweep(s.clauses)
	s.learnts = sweep(s.learnts)
	// Level-0 assignments are permanent facts; clear reason pointers into
	// deleted clauses (conflict analysis never resolves on level-0
	// variables, so the reasons are unused anyway).
	for _, l := range s.trail {
		if r := s.reason[l.Var()]; r != nil && r.deleted {
			s.reason[l.Var()] = nil
		}
	}
}

// Okay reports whether the solver is still consistent (no empty clause has
// been derived at level 0).
func (s *Solver) Okay() bool { return s.ok }
