package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func lit(n int) Lit { // DIMACS-style helper: 1 => x0, -1 => ¬x0
	if n > 0 {
		return MkLit(Var(n-1), false)
	}
	return MkLit(Var(-n-1), true)
}

func newSolverWithVars(n int) *Solver {
	s := New()
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	return s
}

func TestLitBasics(t *testing.T) {
	v := Var(5)
	p, n := PosLit(v), NegLit(v)
	if p.Var() != v || n.Var() != v {
		t.Fatalf("Var round-trip failed: %v %v", p.Var(), n.Var())
	}
	if p.Sign() || !n.Sign() {
		t.Fatalf("sign wrong: p=%v n=%v", p.Sign(), n.Sign())
	}
	if p.Neg() != n || n.Neg() != p {
		t.Fatalf("negation not involutive")
	}
	if p.String() != "6" || n.String() != "-6" {
		t.Fatalf("string: %s %s", p, n)
	}
}

func TestTribool(t *testing.T) {
	if True.Not() != False || False.Not() != True || Undef.Not() != Undef {
		t.Fatal("Not broken")
	}
	if True.xorSign(true) != False || True.xorSign(false) != True {
		t.Fatal("xorSign broken")
	}
	if Undef.xorSign(true) != Undef {
		t.Fatal("xorSign must preserve Undef")
	}
}

func TestEmptyFormulaIsSat(t *testing.T) {
	s := New()
	if got := s.Solve(); got != Sat {
		t.Fatalf("empty formula: got %v, want Sat", got)
	}
}

func TestSingleUnit(t *testing.T) {
	s := newSolverWithVars(1)
	s.AddClause(lit(1))
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v", got)
	}
	if s.Value(0) != True {
		t.Fatalf("x0 should be true, got %v", s.Value(0))
	}
}

func TestContradictoryUnits(t *testing.T) {
	s := newSolverWithVars(1)
	s.AddClause(lit(1))
	ok := s.AddClause(lit(-1))
	if ok {
		t.Fatal("adding contradictory unit should report inconsistency")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v", got)
	}
}

func TestTautologyAccepted(t *testing.T) {
	s := newSolverWithVars(2)
	if !s.AddClause(lit(1), lit(-1)) {
		t.Fatal("tautology should be accepted")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v", got)
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	// x1 ∧ (x1→x2) ∧ (x2→x3) ∧ ... forces all true.
	const n = 50
	s := newSolverWithVars(n)
	s.AddClause(lit(1))
	for i := 1; i < n; i++ {
		s.AddClause(lit(-i), lit(i+1))
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v", got)
	}
	for i := 0; i < n; i++ {
		if s.Value(Var(i)) != True {
			t.Fatalf("x%d should be true", i)
		}
	}
}

func TestUnsatTriangle(t *testing.T) {
	// (a∨b) (¬a∨b) (a∨¬b) (¬a∨¬b) is unsatisfiable.
	s := newSolverWithVars(2)
	s.AddClause(lit(1), lit(2))
	s.AddClause(lit(-1), lit(2))
	s.AddClause(lit(1), lit(-2))
	s.AddClause(lit(-1), lit(-2))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v", got)
	}
}

// pigeonhole adds clauses asserting n+1 pigeons fit into n holes (UNSAT).
func pigeonhole(s *Solver, n int) {
	vars := make([][]Var, n+1)
	for p := 0; p <= n; p++ {
		vars[p] = make([]Var, n)
		for h := 0; h < n; h++ {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ { // every pigeon in some hole
		cl := make([]Lit, n)
		for h := 0; h < n; h++ {
			cl[h] = PosLit(vars[p][h])
		}
		s.AddClause(cl...)
	}
	for h := 0; h < n; h++ { // no two pigeons share a hole
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(NegLit(vars[p1][h]), NegLit(vars[p2][h]))
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := New()
		pigeonhole(s, n)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d): got %v, want Unsat", n, got)
		}
	}
}

func TestPigeonholeSatVariant(t *testing.T) {
	// n pigeons into n holes is satisfiable.
	const n = 5
	s := New()
	vars := make([][]Var, n)
	for p := 0; p < n; p++ {
		vars[p] = make([]Var, n)
		for h := 0; h < n; h++ {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < n; p++ {
		cl := make([]Lit, n)
		for h := 0; h < n; h++ {
			cl[h] = PosLit(vars[p][h])
		}
		s.AddClause(cl...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 < n; p1++ {
			for p2 := p1 + 1; p2 < n; p2++ {
				s.AddClause(NegLit(vars[p1][h]), NegLit(vars[p2][h]))
			}
		}
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v", got)
	}
}

func TestModelSatisfiesAllClauses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		nv := 10 + rng.Intn(20)
		nc := 2 * nv
		s := newSolverWithVars(nv)
		clauses := make([][]Lit, 0, nc)
		for i := 0; i < nc; i++ {
			k := 1 + rng.Intn(3)
			cl := make([]Lit, k)
			for j := range cl {
				cl[j] = MkLit(Var(rng.Intn(nv)), rng.Intn(2) == 0)
			}
			clauses = append(clauses, cl)
			s.AddClause(cl...)
		}
		if s.Solve() != Sat {
			continue
		}
		for _, cl := range clauses {
			sat := false
			for _, l := range cl {
				if s.Value(l.Var()).xorSign(l.Sign()) == True {
					sat = true
					break
				}
			}
			if !sat {
				t.Fatalf("model does not satisfy clause %v", cl)
			}
		}
	}
}

// bruteForceSat decides satisfiability of a CNF by enumeration (≤20 vars).
func bruteForceSat(nv int, clauses [][]Lit) bool {
	for m := 0; m < 1<<uint(nv); m++ {
		ok := true
		for _, cl := range clauses {
			cs := false
			for _, l := range cl {
				bit := m>>uint(l.Var())&1 == 1
				if bit != l.Sign() {
					cs = true
					break
				}
			}
			if !cs {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 200; iter++ {
		nv := 3 + rng.Intn(8)
		nc := 1 + rng.Intn(4*nv)
		clauses := make([][]Lit, 0, nc)
		s := newSolverWithVars(nv)
		for i := 0; i < nc; i++ {
			k := 1 + rng.Intn(3)
			cl := make([]Lit, k)
			for j := range cl {
				cl[j] = MkLit(Var(rng.Intn(nv)), rng.Intn(2) == 0)
			}
			clauses = append(clauses, cl)
			s.AddClause(cl...)
		}
		want := bruteForceSat(nv, clauses)
		got := s.Solve() == Sat
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v clauses=%v", iter, got, want, clauses)
		}
	}
}

func TestQuickRandom3SATAgreesWithBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 4 + int(seed%5+5)%5 // 4..8 vars
		nc := 3 * nv
		clauses := make([][]Lit, 0, nc)
		s := newSolverWithVars(nv)
		for i := 0; i < nc; i++ {
			cl := make([]Lit, 3)
			for j := range cl {
				cl[j] = MkLit(Var(rng.Intn(nv)), rng.Intn(2) == 0)
			}
			clauses = append(clauses, cl)
			s.AddClause(cl...)
		}
		return (s.Solve() == Sat) == bruteForceSat(nv, clauses)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveAssuming(t *testing.T) {
	// (a ∨ b) with assumption ¬a forces b.
	s := newSolverWithVars(2)
	s.AddClause(lit(1), lit(2))
	if got := s.SolveAssuming([]Lit{lit(-1)}); got != Sat {
		t.Fatalf("got %v", got)
	}
	if s.Value(1) != True {
		t.Fatalf("b should be true under ¬a")
	}
	// Assuming both ¬a and ¬b must be Unsat, and the solver stays reusable.
	if got := s.SolveAssuming([]Lit{lit(-1), lit(-2)}); got != Unsat {
		t.Fatalf("got %v", got)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("solver must remain usable after assumption conflict, got %v", got)
	}
}

func TestAssumptionConflictLits(t *testing.T) {
	s := newSolverWithVars(3)
	s.AddClause(lit(-1), lit(2)) // a→b
	s.AddClause(lit(-2), lit(3)) // b→c
	if got := s.SolveAssuming([]Lit{lit(1), lit(-3)}); got != Unsat {
		t.Fatalf("got %v", got)
	}
	if len(s.ConflictLits()) == 0 {
		t.Fatal("expected a non-empty final conflict over assumptions")
	}
}

func TestIncrementalAddAfterSolve(t *testing.T) {
	s := newSolverWithVars(2)
	s.AddClause(lit(1), lit(2))
	if s.Solve() != Sat {
		t.Fatal("phase 1 should be SAT")
	}
	s.AddClause(lit(-1))
	s.AddClause(lit(-2))
	if s.Solve() != Unsat {
		t.Fatal("phase 2 should be UNSAT")
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	run := func(seed int64) Stats {
		s := New()
		s.SetSeed(seed)
		s.SetRandomBranchFreq(0.1)
		pigeonhole(s, 5)
		s.Solve()
		return s.Stats()
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed should give identical statistics: %+v vs %+v", a, b)
	}
}

func TestMaxConflictsGivesUnknown(t *testing.T) {
	s := New()
	pigeonhole(s, 8) // hard enough to exceed a tiny conflict budget
	s.SetMaxConflicts(5)
	if got := s.Solve(); got != Unknown {
		t.Fatalf("got %v, want Unknown under conflict budget", got)
	}
}

// guardedPigeonhole adds pigeonhole clauses for n+1 pigeons in n holes that
// only bite under assumption `guard` (every pigeon-placement clause carries
// ¬guard).
func guardedPigeonhole(s *Solver, guard Var, n int) {
	vars := make([][]Var, n+1)
	for p := 0; p <= n; p++ {
		vars[p] = make([]Var, n)
		for h := 0; h < n; h++ {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		cl := []Lit{NegLit(guard)}
		for h := 0; h < n; h++ {
			cl = append(cl, PosLit(vars[p][h]))
		}
		s.AddClause(cl...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(NegLit(vars[p1][h]), NegLit(vars[p2][h]))
			}
		}
	}
}

func TestMaxConflictsIsPerSolveCall(t *testing.T) {
	// A reused instance must give every Solve call a fresh budget: after a
	// budget-exhausted hard query, an easy query on the same instance must
	// still be decided rather than starved by the accumulated conflicts.
	s := New()
	guard := s.NewVar()
	guardedPigeonhole(s, guard, 8)
	s.SetMaxConflicts(20)
	if got := s.SolveAssuming([]Lit{PosLit(guard)}); got != Unknown {
		t.Fatalf("hard query: got %v, want Unknown", got)
	}
	if s.Stats().Conflicts < 20 {
		t.Fatalf("hard query should have burned its budget, conflicts=%d", s.Stats().Conflicts)
	}
	// Deactivated, the formula is easy — with a cumulative budget this call
	// would be starved and report Unknown.
	if got := s.SolveAssuming([]Lit{NegLit(guard)}); got != Sat {
		t.Fatalf("easy query after an exhausted one must get its own budget, got %v", got)
	}
}

func TestReleaseRetiresActivationClauses(t *testing.T) {
	// Activation-literal lifecycle: clauses (¬a ∨ x) and (¬a ∨ ¬y) are
	// active only under assumption a; releasing ¬a permanently satisfies
	// and garbage-collects them.
	s := newSolverWithVars(3) // a=1, x=2, y=3
	s.AddClause(lit(-1), lit(2))
	s.AddClause(lit(-1), lit(-3))
	if got := s.SolveAssuming([]Lit{lit(1)}); got != Sat {
		t.Fatalf("got %v", got)
	}
	if s.Value(1) != True || s.Value(2) != False {
		t.Fatalf("assumption a must force x and ¬y: x=%v y=%v", s.Value(1), s.Value(2))
	}
	before := s.NumClauses()
	if !s.Release(lit(-1)) {
		t.Fatal("release must keep the solver consistent")
	}
	if got := s.NumClauses(); got >= before {
		t.Fatalf("release must garbage-collect satisfied clauses: %d -> %d", before, got)
	}
	// With a retired, x and y are unconstrained again.
	if got := s.SolveAssuming([]Lit{lit(-2), lit(3)}); got != Sat {
		t.Fatalf("retired query must no longer constrain x/y, got %v", got)
	}
}

func TestReleaseDropsConditionedLearnts(t *testing.T) {
	// Learnt clauses derived under an activation assumption contain its
	// negation and must be collected when the activation is released.
	s := New()
	a := s.NewVar()
	guardedPigeonhole(s, a, 6)
	if got := s.SolveAssuming([]Lit{PosLit(a)}); got != Unsat {
		t.Fatalf("guarded pigeonhole under a: got %v, want Unsat", got)
	}
	if !s.Release(NegLit(a)) {
		t.Fatal("release must keep the solver consistent")
	}
	for _, c := range s.learnts {
		for _, l := range c.lits {
			if l.Var() == a {
				t.Fatal("learnt clause conditioned on released activation survived GC")
			}
		}
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("formula without activation must be Sat, got %v", got)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestVarOrderHeap(t *testing.T) {
	act := []float64{1, 5, 3, 4, 2}
	o := newVarOrder(&act)
	o.grow(5)
	for v := 0; v < 5; v++ {
		o.push(Var(v))
	}
	got := []Var{}
	for !o.empty() {
		got = append(got, o.pop())
	}
	want := []Var{1, 3, 2, 4, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("heap order = %v, want %v", got, want)
		}
	}
}

func TestStatsProgress(t *testing.T) {
	s := New()
	pigeonhole(s, 5)
	s.Solve()
	st := s.Stats()
	if st.Conflicts == 0 || st.Propagations == 0 {
		t.Fatalf("expected non-trivial work, got %+v", st)
	}
}

func BenchmarkSolverPigeonhole7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		pigeonhole(s, 7)
		if s.Solve() != Unsat {
			b.Fatal("wrong verdict")
		}
	}
}

func BenchmarkSolverRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < b.N; i++ {
		nv := 60
		s := newSolverWithVars(nv)
		for c := 0; c < int(4.0*float64(nv)); c++ {
			cl := make([]Lit, 3)
			for j := range cl {
				cl[j] = MkLit(Var(rng.Intn(nv)), rng.Intn(2) == 0)
			}
			s.AddClause(cl...)
		}
		s.Solve()
	}
}
