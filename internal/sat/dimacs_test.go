package sat

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseDIMACSBasic(t *testing.T) {
	in := `c a comment
p cnf 3 2
1 -2 0
2 3 0
`
	s, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != 3 || s.NumClauses() != 2 {
		t.Fatalf("vars=%d clauses=%d", s.NumVars(), s.NumClauses())
	}
	if s.Solve() != Sat {
		t.Fatal("should be SAT")
	}
}

func TestParseDIMACSWithoutHeader(t *testing.T) {
	s, err := ParseDIMACS(strings.NewReader("1 2 0\n-1 0\n-2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != Unsat {
		t.Fatal("should be UNSAT")
	}
}

func TestParseDIMACSClauseWithoutTrailingZero(t *testing.T) {
	s, err := ParseDIMACS(strings.NewReader("p cnf 2 1\n1 2"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != Sat {
		t.Fatal("should be SAT")
	}
}

func TestParseDIMACSBadHeader(t *testing.T) {
	if _, err := ParseDIMACS(strings.NewReader("p sat 3 2\n")); err == nil {
		t.Fatal("expected error for non-cnf header")
	}
	if _, err := ParseDIMACS(strings.NewReader("p cnf x 2\n")); err == nil {
		t.Fatal("expected error for non-numeric var count")
	}
}

func TestParseDIMACSBadLiteral(t *testing.T) {
	if _, err := ParseDIMACS(strings.NewReader("1 foo 0\n")); err == nil {
		t.Fatal("expected error for bad literal")
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	s := newSolverWithVars(4)
	s.AddClause(lit(1), lit(-2))
	s.AddClause(lit(2), lit(3), lit(-4))
	s.AddClause(lit(-1))
	var buf bytes.Buffer
	if err := s.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s2.Solve(), s.Solve(); got != want {
		t.Fatalf("round-trip changed verdict: %v vs %v", got, want)
	}
}

func TestDIMACSRoundTripUnsat(t *testing.T) {
	s := New()
	pigeonhole(s, 3)
	var buf bytes.Buffer
	if err := s.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Solve() != Unsat {
		t.Fatal("round-tripped pigeonhole should stay UNSAT")
	}
}
