package sat

// clause is a disjunction of literals. The first two literal positions are
// the watched positions maintained by propagation. Learnt clauses carry an
// activity score used by reduceDB and an LBD ("glue") score used to protect
// high-quality clauses from deletion.
type clause struct {
	lits     []Lit
	activity float64
	lbd      int32
	learnt   bool
	deleted  bool
}

func (c *clause) len() int { return len(c.lits) }

// watcher is an entry in a literal's watch list: the watching clause plus a
// "blocker" literal whose satisfaction lets propagation skip the clause
// without touching its memory.
type watcher struct {
	c       *clause
	blocker Lit
}

// varOrder is a max-heap of variables keyed by VSIDS activity. It supports
// lazy removal: popped variables that are already assigned are skipped by
// the caller. indices[v] is the heap position of v, or -1 when absent.
type varOrder struct {
	heap     []Var
	indices  []int32
	activity *[]float64
}

func newVarOrder(activity *[]float64) *varOrder {
	return &varOrder{activity: activity}
}

func (o *varOrder) grow(n int) {
	for len(o.indices) < n {
		o.indices = append(o.indices, -1)
	}
}

func (o *varOrder) contains(v Var) bool { return o.indices[v] >= 0 }

func (o *varOrder) less(i, j int) bool {
	a := *o.activity
	return a[o.heap[i]] > a[o.heap[j]]
}

func (o *varOrder) swap(i, j int) {
	o.heap[i], o.heap[j] = o.heap[j], o.heap[i]
	o.indices[o.heap[i]] = int32(i)
	o.indices[o.heap[j]] = int32(j)
}

func (o *varOrder) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !o.less(i, p) {
			break
		}
		o.swap(i, p)
		i = p
	}
}

func (o *varOrder) down(i int) {
	n := len(o.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && o.less(l, smallest) {
			smallest = l
		}
		if r < n && o.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		o.swap(i, smallest)
		i = smallest
	}
}

func (o *varOrder) push(v Var) {
	if o.contains(v) {
		return
	}
	o.heap = append(o.heap, v)
	o.indices[v] = int32(len(o.heap) - 1)
	o.up(len(o.heap) - 1)
}

func (o *varOrder) pop() Var {
	v := o.heap[0]
	last := len(o.heap) - 1
	o.swap(0, last)
	o.heap = o.heap[:last]
	o.indices[v] = -1
	if last > 0 {
		o.down(0)
	}
	return v
}

func (o *varOrder) empty() bool { return len(o.heap) == 0 }

// bump restores heap order after v's activity increased.
func (o *varOrder) bump(v Var) {
	if o.contains(v) {
		o.up(int(o.indices[v]))
	}
}
