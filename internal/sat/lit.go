// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver. It is the bottom layer of VMN's verification stack, standing in
// for Z3's propositional core: internal/smt grounds finite-domain
// first-order formulas into CNF which this package decides.
//
// The solver implements the standard modern architecture: two-literal
// watching for unit propagation, VSIDS variable activity with phase saving,
// first-UIP conflict analysis with clause minimization, Luby-sequence
// restarts, and activity-driven deletion of learnt clauses. Solving under
// assumptions is supported so callers can reuse one solver instance across
// related queries.
package sat

import "fmt"

// Var identifies a propositional variable. Variables are dense small
// integers handed out by Solver.NewVar starting from 0.
type Var int32

// Lit is a literal: a variable together with a sign. The encoding is the
// usual one (2*v for the positive literal, 2*v+1 for the negation) so that
// a literal indexes watch lists directly.
type Lit int32

// LitUndef is a sentinel literal distinct from every real literal.
const LitUndef Lit = -1

// VarUndef is a sentinel variable distinct from every real variable.
const VarUndef Var = -1

// MkLit constructs a literal for v, negated if neg is true.
func MkLit(v Var, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v << 1) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v<<1) | 1 }

// Var returns the variable underlying l.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg returns the complement of l.
func (l Lit) Neg() Lit { return l ^ 1 }

// Sign reports whether l is a negated literal.
func (l Lit) Sign() bool { return l&1 == 1 }

// String renders the literal in DIMACS style (e.g. "3", "-7"), 1-based.
func (l Lit) String() string {
	if l == LitUndef {
		return "undef"
	}
	if l.Sign() {
		return fmt.Sprintf("-%d", int(l.Var())+1)
	}
	return fmt.Sprintf("%d", int(l.Var())+1)
}

// Tribool is a three-valued boolean used for assignments and model queries.
type Tribool int8

// Tribool values.
const (
	False Tribool = iota
	True
	Undef
)

// String returns "false", "true" or "undef".
func (t Tribool) String() string {
	switch t {
	case False:
		return "false"
	case True:
		return "true"
	default:
		return "undef"
	}
}

// Not negates a tribool; Undef stays Undef.
func (t Tribool) Not() Tribool {
	switch t {
	case False:
		return True
	case True:
		return False
	default:
		return Undef
	}
}

// xorSign flips t when sign is true, used to evaluate a literal from its
// variable's assignment.
func (t Tribool) xorSign(sign bool) Tribool {
	if t == Undef || !sign {
		return t
	}
	return t.Not()
}
