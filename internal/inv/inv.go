// Package inv defines VMN's reachability invariants (§3.3) and the bounded
// verification problems the engines solve. Every invariant compiles to a
// past-time LTL formula ("bad") whose truth at any trace step is a
// violation; the invariant itself is □¬bad. Both engines answer the same
// question — does any admissible schedule make bad true? — one by explicit
// product exploration (internal/explore), one by SAT-based bounded model
// checking (internal/encode).
package inv

import (
	"fmt"

	"github.com/netverify/vmn/internal/logic"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// Sample is one representative packet a host may inject: the finite
// alphabet over which the scheduling oracle ranges. Samples are well
// formed (the sender owns the source address), per §3.5's oracle axioms.
type Sample struct {
	Sender topo.NodeID
	Hdr    pkt.Header
}

// Problem is a bounded verification instance over a (possibly sliced)
// network. MaxSends bounds the number of host-send events in a schedule;
// the §4 slicing argument keeps the needed bound small and independent of
// network size for the supported invariant classes (violation witnesses
// need at most one packet per causal stage: initiate, establish, fill,
// probe).
type Problem struct {
	Topo      *topo.Topology
	TF        *tf.Engine
	Boxes     []mbox.Instance
	Registry  *pkt.Registry
	Samples   []Sample
	MaxSends  int
	Scenario  topo.FailureScenario
	Invariant Invariant
}

// RelevantClasses unions the abstract classes consulted by the problem's
// middleboxes — the classification oracle only varies these bits.
func (p *Problem) RelevantClasses() pkt.ClassSet {
	var s pkt.ClassSet
	for _, b := range p.Boxes {
		s |= b.Model.RelevantClasses(p.Registry)
	}
	return s
}

// ClassAssignments enumerates the consistent oracle assignments over the
// relevant classes (always at least the empty assignment).
func (p *Problem) ClassAssignments() []pkt.ClassSet {
	if p.Registry == nil {
		return []pkt.ClassSet{0}
	}
	out := p.Registry.EnumerateConsistent(p.RelevantClasses())
	if len(out) == 0 {
		return []pkt.ClassSet{0}
	}
	return out
}

// Outcome is a verification verdict.
type Outcome int8

// Outcomes.
const (
	// Holds: no admissible schedule within the bound violates the invariant.
	Holds Outcome = iota
	// Violated: a concrete violating schedule exists (see Result.Trace).
	Violated
	// Unknown: the engine exhausted its budget without a verdict.
	Unknown
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Holds:
		return "holds"
	case Violated:
		return "violated"
	default:
		return "unknown"
	}
}

// Result is an engine's answer.
type Result struct {
	Outcome Outcome
	// Trace is a violating schedule when Outcome == Violated.
	Trace []logic.Event
	// StatesExplored (explicit engine) or Conflicts (BMC) indicate work.
	StatesExplored  int
	SolverConflicts int64
}

// Invariant is a reachability-class invariant (§3.3).
type Invariant interface {
	// Name identifies the invariant in reports.
	Name() string
	// Bad compiles the violation condition against the problem's finite
	// alphabet.
	Bad(p *Problem) logic.Formula
	// Nodes lists the nodes the invariant references; a slice must contain
	// them (§4).
	Nodes() []topo.NodeID
	// Expectation: true if the network is expected to satisfy □¬bad
	// (isolation-style), false if bad is *desired* reachable
	// (reachability-style, e.g. Priv-Pub in §5.3.2). Used only for
	// reporting; engines always search for bad.
	Expectation() bool
	// RefAddrs lists the host addresses the invariant references; their
	// owners must be in the slice alongside Nodes().
	RefAddrs() []pkt.Addr
}

// matchSrc builds the predicate "header source equals a".
func matchSrc(a pkt.Addr) func(logic.Event) bool {
	return func(e logic.Event) bool { return e.Hdr.Src == a }
}

// SimpleIsolation asserts node Dst never receives a packet whose source
// address is SrcAddr: ∀n,p: □¬(rcv(d,n,p) ∧ src(p)=s).
type SimpleIsolation struct {
	Dst     topo.NodeID
	SrcAddr pkt.Addr
	Label   string
}

// Name implements Invariant.
func (i SimpleIsolation) Name() string {
	if i.Label != "" {
		return i.Label
	}
	return fmt.Sprintf("simple-isolation(dst=%d,src=%s)", i.Dst, i.SrcAddr)
}

// Bad implements Invariant.
func (i SimpleIsolation) Bad(*Problem) logic.Formula {
	return logic.RcvAt(i.Dst, fmt.Sprintf("src=%s", i.SrcAddr), matchSrc(i.SrcAddr))
}

// Nodes implements Invariant.
func (i SimpleIsolation) Nodes() []topo.NodeID { return []topo.NodeID{i.Dst} }

// Expectation implements Invariant.
func (i SimpleIsolation) Expectation() bool { return true }

// RefAddrs implements Invariant.
func (i SimpleIsolation) RefAddrs() []pkt.Addr { return []pkt.Addr{i.SrcAddr} }

// Reachability is the positive counterpart of SimpleIsolation: it *wants*
// Dst to receive a packet from SrcAddr (e.g. §5.3.2's Priv-Pub check).
// Engines still search for the receive event; Violated means "reachable".
type Reachability struct {
	Dst     topo.NodeID
	SrcAddr pkt.Addr
	Label   string
}

// Name implements Invariant.
func (i Reachability) Name() string {
	if i.Label != "" {
		return i.Label
	}
	return fmt.Sprintf("reachable(dst=%d,src=%s)", i.Dst, i.SrcAddr)
}

// Bad implements Invariant (the "bad" event is the desired one here).
func (i Reachability) Bad(*Problem) logic.Formula {
	return logic.RcvAt(i.Dst, fmt.Sprintf("src=%s", i.SrcAddr), matchSrc(i.SrcAddr))
}

// Nodes implements Invariant.
func (i Reachability) Nodes() []topo.NodeID { return []topo.NodeID{i.Dst} }

// Expectation implements Invariant: reachability is satisfied when the
// event CAN happen.
func (i Reachability) Expectation() bool { return false }

// RefAddrs implements Invariant.
func (i Reachability) RefAddrs() []pkt.Addr { return []pkt.Addr{i.SrcAddr} }

// DataIsolation asserts Dst never receives data originating at Origin,
// whether directly or via a cache: □¬(rcv(d,n,p) ∧ origin(p)=o). (§3.3,
// §5.2.)
type DataIsolation struct {
	Dst    topo.NodeID
	Origin pkt.Addr
	Label  string
}

// Name implements Invariant.
func (i DataIsolation) Name() string {
	if i.Label != "" {
		return i.Label
	}
	return fmt.Sprintf("data-isolation(dst=%d,origin=%s)", i.Dst, i.Origin)
}

// Bad implements Invariant.
func (i DataIsolation) Bad(*Problem) logic.Formula {
	return logic.RcvAt(i.Dst, fmt.Sprintf("origin=%s", i.Origin), func(e logic.Event) bool {
		return e.Hdr.Origin == i.Origin
	})
}

// Nodes implements Invariant.
func (i DataIsolation) Nodes() []topo.NodeID { return []topo.NodeID{i.Dst} }

// Expectation implements Invariant.
func (i DataIsolation) Expectation() bool { return true }

// RefAddrs implements Invariant.
func (i DataIsolation) RefAddrs() []pkt.Addr { return []pkt.Addr{i.Origin} }

// FlowIsolation asserts Dst receives packets from SrcAddr only on flows
// Dst itself initiated (§3.3's flow isolation; the "private hosts may
// initiate but never accept" policy of §5.3.1):
//
//	□¬(rcv(d,n,p) ∧ src(p)=s ∧ ¬♦(snd(d,n',p') ∧ flow(p')=flow(p)))
//
// The flow comparison is grounded over the problem's finite alphabet.
type FlowIsolation struct {
	Dst     topo.NodeID
	SrcAddr pkt.Addr
	Label   string
}

// Name implements Invariant.
func (i FlowIsolation) Name() string {
	if i.Label != "" {
		return i.Label
	}
	return fmt.Sprintf("flow-isolation(dst=%d,src=%s)", i.Dst, i.SrcAddr)
}

// Bad implements Invariant.
func (i FlowIsolation) Bad(p *Problem) logic.Formula {
	// Collect the canonical flows of alphabet packets with source SrcAddr
	// that could arrive at Dst.
	flows := map[pkt.Flow]bool{}
	for _, s := range p.Samples {
		if s.Hdr.Src == i.SrcAddr {
			flows[pkt.FlowOf(s.Hdr).Canonical()] = true
		}
	}
	var disjuncts []logic.Formula
	for fl := range flows {
		fl := fl
		rcv := logic.RcvAt(i.Dst, fmt.Sprintf("flow=%s,src=%s", fl, i.SrcAddr), func(e logic.Event) bool {
			return e.Hdr.Src == i.SrcAddr && pkt.FlowOf(e.Hdr).Canonical() == fl
		})
		snd := logic.SndFrom(i.Dst, fmt.Sprintf("flow=%s", fl), func(e logic.Event) bool {
			return pkt.FlowOf(e.Hdr).Canonical() == fl
		})
		disjuncts = append(disjuncts, logic.And(rcv, logic.Not(logic.Once(snd))))
	}
	if len(disjuncts) == 0 {
		// No alphabet packet can trigger the invariant: bad is
		// unreachable, which engines report as Holds.
		return logic.NewAtom("false", func(logic.Event) bool { return false })
	}
	return logic.Or(disjuncts...)
}

// Nodes implements Invariant.
func (i FlowIsolation) Nodes() []topo.NodeID { return []topo.NodeID{i.Dst} }

// Expectation implements Invariant.
func (i FlowIsolation) Expectation() bool { return true }

// RefAddrs implements Invariant.
func (i FlowIsolation) RefAddrs() []pkt.Addr { return []pkt.Addr{i.SrcAddr} }

// Traversal asserts every packet received by Dst whose source matches
// SrcPrefix has previously been received by one of the Via middlebox
// instances (the §5.1 "Misconfigured Redundant Routing" invariant: all
// packets traverse an IDPS):
//
//	□¬(rcv(d,n,p) ∧ ¬♦ ∨_m rcv(m,n',p))
type Traversal struct {
	Dst       topo.NodeID
	SrcPrefix pkt.Prefix
	// SrcAddr is a representative sender inside SrcPrefix; its owner is
	// pulled into the slice so that matching traffic exists.
	SrcAddr pkt.Addr
	Vias    []topo.NodeID
	Label   string
}

// Name implements Invariant.
func (i Traversal) Name() string {
	if i.Label != "" {
		return i.Label
	}
	return fmt.Sprintf("traversal(dst=%d,via=%v)", i.Dst, i.Vias)
}

// Bad implements Invariant.
func (i Traversal) Bad(*Problem) logic.Formula {
	match := func(e logic.Event) bool { return i.SrcPrefix.Matches(e.Hdr.Src) }
	rcvAtDst := logic.RcvAt(i.Dst, fmt.Sprintf("src in %s", i.SrcPrefix), match)
	var seen []logic.Formula
	for _, m := range i.Vias {
		seen = append(seen, logic.Once(logic.RcvAt(m, "via", match)))
	}
	return logic.And(rcvAtDst, logic.Not(logic.Or(seen...)))
}

// Nodes implements Invariant.
func (i Traversal) Nodes() []topo.NodeID {
	return append([]topo.NodeID{i.Dst}, i.Vias...)
}

// Expectation implements Invariant.
func (i Traversal) Expectation() bool { return true }

// RefAddrs implements Invariant.
func (i Traversal) RefAddrs() []pkt.Addr {
	if i.SrcAddr == pkt.AddrNone {
		return nil
	}
	return []pkt.Addr{i.SrcAddr}
}
