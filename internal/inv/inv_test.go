package inv

import (
	"strings"
	"testing"

	"github.com/netverify/vmn/internal/logic"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/topo"
)

var (
	aS = pkt.MustParseAddr("10.0.0.1")
	aD = pkt.MustParseAddr("10.0.0.2")
)

func hdr(src, dst pkt.Addr, sp, dp pkt.Port) pkt.Header {
	return pkt.Header{Src: src, Dst: dst, SrcPort: sp, DstPort: dp, Proto: pkt.TCP}
}

func rcv(dst topo.NodeID, h pkt.Header) logic.Event {
	return logic.Event{Kind: logic.EvRecv, Dst: dst, Hdr: h}
}

func snd(src topo.NodeID, h pkt.Header) logic.Event {
	return logic.Event{Kind: logic.EvSend, Src: src, Hdr: h}
}

func TestSimpleIsolationBad(t *testing.T) {
	i := SimpleIsolation{Dst: 2, SrcAddr: aS}
	m := logic.Compile(i.Bad(nil))
	if m.Step(rcv(2, hdr(aD, aS, 1, 2))) {
		t.Fatal("wrong source must not trip")
	}
	if m.Step(rcv(3, hdr(aS, aD, 1, 2))) {
		t.Fatal("wrong destination must not trip")
	}
	if !m.Step(rcv(2, hdr(aS, aD, 1, 2))) {
		t.Fatal("matching receive must trip")
	}
	if !i.Expectation() || len(i.RefAddrs()) != 1 || i.Nodes()[0] != 2 {
		t.Fatal("metadata wrong")
	}
}

func TestReachabilityMetadata(t *testing.T) {
	i := Reachability{Dst: 2, SrcAddr: aS, Label: "x"}
	if i.Expectation() {
		t.Fatal("reachability wants the event")
	}
	if i.Name() != "x" {
		t.Fatal("label should name it")
	}
	if (Reachability{Dst: 2, SrcAddr: aS}).Name() == "" {
		t.Fatal("default name empty")
	}
}

func TestDataIsolationBad(t *testing.T) {
	i := DataIsolation{Dst: 2, Origin: aS}
	m := logic.Compile(i.Bad(nil))
	h := hdr(aD, aS, 1, 2)
	if m.Step(rcv(2, h)) {
		t.Fatal("no origin must not trip")
	}
	h.Origin = aS
	if !m.Step(rcv(2, h)) {
		t.Fatal("matching origin must trip")
	}
}

func TestFlowIsolationBadGroundsOverAlphabet(t *testing.T) {
	p := &Problem{Samples: []Sample{
		{Sender: 1, Hdr: hdr(aS, aD, 80, 1000)},
	}}
	i := FlowIsolation{Dst: 2, SrcAddr: aS}
	m := logic.Compile(i.Bad(p))
	// Receive without prior send: violation.
	if !m.Step(rcv(2, hdr(aS, aD, 80, 1000))) {
		t.Fatal("unsolicited receive must trip")
	}
	// With a prior send on the same (canonical) flow: fine.
	m2 := logic.Compile(i.Bad(p))
	if m2.Step(snd(2, hdr(aD, aS, 1000, 80))) {
		t.Fatal("send alone is not bad")
	}
	if m2.Step(rcv(2, hdr(aS, aD, 80, 1000))) {
		t.Fatal("reply to own flow must not trip")
	}
	// Empty alphabet: bad is unreachable.
	empty := FlowIsolation{Dst: 2, SrcAddr: aS}.Bad(&Problem{})
	m3 := logic.Compile(empty)
	if m3.Step(rcv(2, hdr(aS, aD, 80, 1000))) {
		t.Fatal("empty alphabet must not trip")
	}
}

func TestTraversalBad(t *testing.T) {
	i := Traversal{Dst: 2, SrcPrefix: pkt.HostPrefix(aS), SrcAddr: aS, Vias: []topo.NodeID{7}}
	m := logic.Compile(i.Bad(nil))
	h := hdr(aS, aD, 1, 2)
	// Receive at dst without crossing the via: violation.
	if !m.Step(rcv(2, h)) {
		t.Fatal("bypass must trip")
	}
	// Crossing the via first: fine.
	m2 := logic.Compile(i.Bad(nil))
	if m2.Step(rcv(7, h)) {
		t.Fatal("via receive is not bad")
	}
	if m2.Step(rcv(2, h)) {
		t.Fatal("post-via receive must not trip")
	}
	if len(i.Nodes()) != 2 {
		t.Fatal("nodes must include vias")
	}
	if i.RefAddrs()[0] != aS {
		t.Fatal("refaddrs wrong")
	}
	if (Traversal{}).RefAddrs() != nil {
		t.Fatal("no SrcAddr -> no RefAddrs")
	}
}

func TestProblemClassAssignments(t *testing.T) {
	reg := pkt.NewRegistry()
	p := &Problem{Registry: reg}
	if got := p.ClassAssignments(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("empty registry should give the empty assignment: %v", got)
	}
	appfw := mbox.NewAppFirewall("f", reg, "skype")
	p.Boxes = []mbox.Instance{{Node: 0, Model: appfw}}
	if got := p.ClassAssignments(); len(got) != 2 {
		t.Fatalf("one relevant class should give 2 assignments: %v", got)
	}
	if (&Problem{}).ClassAssignments()[0] != 0 {
		t.Fatal("nil registry must still yield the empty assignment")
	}
}

func TestOutcomeString(t *testing.T) {
	if Holds.String() != "holds" || Violated.String() != "violated" || Unknown.String() != "unknown" {
		t.Fatal("outcome names")
	}
}

func TestInvariantNames(t *testing.T) {
	for _, i := range []Invariant{
		SimpleIsolation{Dst: 1, SrcAddr: aS},
		FlowIsolation{Dst: 1, SrcAddr: aS},
		DataIsolation{Dst: 1, Origin: aS},
		Reachability{Dst: 1, SrcAddr: aS},
		Traversal{Dst: 1, Vias: []topo.NodeID{2}},
	} {
		if i.Name() == "" || !strings.Contains(i.Name(), "") {
			t.Fatalf("empty name for %T", i)
		}
	}
}
