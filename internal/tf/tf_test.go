package tf

import (
	"errors"
	"testing"

	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/topo"
)

// lineTopo builds h1 - sw1 - sw2 - h2 with a firewall hanging off sw2:
//
//	h1 -- sw1 -- sw2 -- h2
//	              |
//	             fw
func lineTopo() (*topo.Topology, map[string]topo.NodeID) {
	t := topo.New()
	ids := map[string]topo.NodeID{}
	ids["h1"] = t.AddHost("h1", pkt.MustParseAddr("10.0.0.1"))
	ids["h2"] = t.AddHost("h2", pkt.MustParseAddr("10.0.0.2"))
	ids["sw1"] = t.AddSwitch("sw1")
	ids["sw2"] = t.AddSwitch("sw2")
	ids["fw"] = t.AddMiddlebox("fw", "firewall")
	t.AddLink(ids["h1"], ids["sw1"])
	t.AddLink(ids["sw1"], ids["sw2"])
	t.AddLink(ids["sw2"], ids["h2"])
	t.AddLink(ids["sw2"], ids["fw"])
	return t, ids
}

func addrOf(t *topo.Topology, id topo.NodeID) pkt.Addr { return t.Node(id).Addr }

func TestDirectForwarding(t *testing.T) {
	tp, ids := lineTopo()
	fib := FIB{}
	fib.Add(ids["sw1"], Rule{Match: pkt.HostPrefix(addrOf(tp, ids["h2"])), In: topo.NodeNone, Out: ids["sw2"]})
	fib.Add(ids["sw2"], Rule{Match: pkt.HostPrefix(addrOf(tp, ids["h2"])), In: topo.NodeNone, Out: ids["h2"]})
	e := New(tp, fib, topo.NoFailures())
	next, ok, err := e.Next(ids["h1"], addrOf(tp, ids["h2"]))
	if err != nil || !ok || next != ids["h2"] {
		t.Fatalf("next=%v ok=%v err=%v", next, ok, err)
	}
}

func TestThroughMiddlebox(t *testing.T) {
	tp, ids := lineTopo()
	h2 := pkt.HostPrefix(addrOf(tp, ids["h2"]))
	fib := FIB{}
	fib.Add(ids["sw1"], Rule{Match: h2, In: topo.NodeNone, Out: ids["sw2"]})
	// Packets to h2 go through fw first; packets from fw go to h2.
	fib.Add(ids["sw2"], Rule{Match: h2, In: ids["fw"], Out: ids["h2"], Priority: 10})
	fib.Add(ids["sw2"], Rule{Match: h2, In: topo.NodeNone, Out: ids["fw"], Priority: 0})
	e := New(tp, fib, topo.NoFailures())

	next, ok, err := e.Next(ids["h1"], h2.Addr)
	if err != nil || !ok || next != ids["fw"] {
		t.Fatalf("first hop should be fw: next=%v ok=%v err=%v", next, ok, err)
	}
	// From the firewall, the packet surfaces at h2.
	next, ok, err = e.Next(ids["fw"], h2.Addr)
	if err != nil || !ok || next != ids["h2"] {
		t.Fatalf("second hop should be h2: next=%v ok=%v err=%v", next, ok, err)
	}
	// Path sees fw then h2.
	path, err := e.Path(ids["h1"], h2.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 || path[0] != ids["fw"] || path[1] != ids["h2"] {
		t.Fatalf("path = %v", path)
	}
}

func TestBlackhole(t *testing.T) {
	tp, ids := lineTopo()
	e := New(tp, FIB{}, topo.NoFailures())
	// sw1 has no rules and is not an edge node: drop.
	_, ok, err := e.Next(ids["h1"], addrOf(tp, ids["h2"]))
	if err != nil || ok {
		t.Fatalf("expected drop, got ok=%v err=%v", ok, err)
	}
	if _, err := e.Path(ids["h1"], addrOf(tp, ids["h2"])); err == nil {
		t.Fatal("Path should report the drop")
	}
}

func TestLoopDetection(t *testing.T) {
	tp, ids := lineTopo()
	h2 := pkt.HostPrefix(addrOf(tp, ids["h2"]))
	fib := FIB{}
	fib.Add(ids["sw1"], Rule{Match: h2, In: topo.NodeNone, Out: ids["sw2"]})
	fib.Add(ids["sw2"], Rule{Match: h2, In: topo.NodeNone, Out: ids["sw1"]})
	e := New(tp, fib, topo.NoFailures())
	_, _, err := e.Next(ids["h1"], h2.Addr)
	if !errors.Is(err, ErrLoop) {
		t.Fatalf("expected ErrLoop, got %v", err)
	}
	if _, err := e.Matrix(); !errors.Is(err, ErrLoop) {
		t.Fatalf("Matrix should surface the loop, got %v", err)
	}
}

func TestPriorityAndBackupUnderFailure(t *testing.T) {
	// Two parallel firewalls; traffic prefers fw1, uses fw2 when fw1 failed.
	tp := topo.New()
	h1 := tp.AddHost("h1", pkt.MustParseAddr("10.0.0.1"))
	h2 := tp.AddHost("h2", pkt.MustParseAddr("10.0.0.2"))
	sw := tp.AddSwitch("sw")
	fw1 := tp.AddMiddlebox("fw1", "firewall")
	fw2 := tp.AddMiddlebox("fw2", "firewall")
	tp.AddLink(h1, sw)
	tp.AddLink(h2, sw)
	tp.AddLink(fw1, sw)
	tp.AddLink(fw2, sw)
	h2p := pkt.HostPrefix(pkt.MustParseAddr("10.0.0.2"))
	fib := FIB{}
	fib.Add(sw, Rule{Match: h2p, In: fw1, Out: h2, Priority: 30})
	fib.Add(sw, Rule{Match: h2p, In: fw2, Out: h2, Priority: 30})
	fib.Add(sw, Rule{Match: h2p, In: topo.NodeNone, Out: fw1, Priority: 20})
	fib.Add(sw, Rule{Match: h2p, In: topo.NodeNone, Out: fw2, Priority: 10})

	e := New(tp, fib, topo.NoFailures())
	next, ok, err := e.Next(h1, h2p.Addr)
	if err != nil || !ok || next != fw1 {
		t.Fatalf("healthy: next=%v ok=%v err=%v (want fw1=%v)", next, ok, err, fw1)
	}

	// Note: failed middleboxes still receive packets (their fail-open/closed
	// semantics are the middlebox model's concern, §3.4), but failed
	// switches are routed around. Routing to a failed middlebox is exactly
	// the redundancy scenario of §5.1 — the static datapath does not
	// change, so fw1 still gets the traffic.
	ef := New(tp, fib, topo.Failures(fw1))
	next, ok, err = ef.Next(h1, h2p.Addr)
	if err != nil || !ok || next != fw1 {
		t.Fatalf("middlebox failure must not silently reroute: next=%v ok=%v err=%v", next, ok, err)
	}
}

func TestRerouteAroundFailedSwitch(t *testing.T) {
	// h1 - swA - swC - h2 with backup swB parallel to swA's next hop.
	tp := topo.New()
	h1 := tp.AddHost("h1", pkt.MustParseAddr("10.0.0.1"))
	h2 := tp.AddHost("h2", pkt.MustParseAddr("10.0.0.2"))
	swA := tp.AddSwitch("swA")
	swB := tp.AddSwitch("swB")
	swC := tp.AddSwitch("swC")
	tp.AddLink(h1, swA)
	tp.AddLink(swA, swB)
	tp.AddLink(swA, swC)
	tp.AddLink(swB, h2)
	tp.AddLink(swC, h2)
	h2p := pkt.HostPrefix(pkt.MustParseAddr("10.0.0.2"))
	fib := FIB{}
	fib.Add(swA, Rule{Match: h2p, In: topo.NodeNone, Out: swC, Priority: 10}) // primary
	fib.Add(swA, Rule{Match: h2p, In: topo.NodeNone, Out: swB, Priority: 5})  // backup
	fib.Add(swB, Rule{Match: h2p, In: topo.NodeNone, Out: h2})
	fib.Add(swC, Rule{Match: h2p, In: topo.NodeNone, Out: h2})

	e := New(tp, fib, topo.NoFailures())
	if next, _, _ := e.Next(h1, h2p.Addr); next != h2 {
		t.Fatalf("healthy path broken: %v", next)
	}
	ef := New(tp, fib, topo.Failures(swC))
	next, ok, err := ef.Next(h1, h2p.Addr)
	if err != nil || !ok || next != h2 {
		t.Fatalf("backup path not used: next=%v ok=%v err=%v", next, ok, err)
	}
}

func TestLongestPrefixWins(t *testing.T) {
	tp := topo.New()
	h1 := tp.AddHost("h1", pkt.MustParseAddr("10.0.0.1"))
	hSpec := tp.AddHost("h-spec", pkt.MustParseAddr("10.1.0.1"))
	hGen := tp.AddHost("h-gen", pkt.MustParseAddr("10.2.0.1"))
	sw := tp.AddSwitch("sw")
	tp.AddLink(h1, sw)
	tp.AddLink(hSpec, sw)
	tp.AddLink(hGen, sw)
	fib := FIB{}
	fib.Add(sw, Rule{Match: pkt.Prefix{Addr: pkt.MustParseAddr("10.0.0.0"), Len: 8}, In: topo.NodeNone, Out: hGen})
	fib.Add(sw, Rule{Match: pkt.Prefix{Addr: pkt.MustParseAddr("10.1.0.0"), Len: 16}, In: topo.NodeNone, Out: hSpec})
	e := New(tp, fib, topo.NoFailures())
	if next, _, _ := e.Next(h1, pkt.MustParseAddr("10.1.0.1")); next != hSpec {
		t.Fatalf("longest prefix should win, got %v", next)
	}
	if next, _, _ := e.Next(h1, pkt.MustParseAddr("10.2.0.1")); next != hGen {
		t.Fatalf("general prefix should catch rest, got %v", next)
	}
}

func TestImplicitDefaultSingleLink(t *testing.T) {
	// A host with one link forwards into the fabric without explicit rules.
	tp, ids := lineTopo()
	h2 := pkt.HostPrefix(addrOf(tp, ids["h2"]))
	fib := FIB{}
	fib.Add(ids["sw1"], Rule{Match: h2, In: topo.NodeNone, Out: ids["sw2"]})
	fib.Add(ids["sw2"], Rule{Match: h2, In: topo.NodeNone, Out: ids["h2"]})
	e := New(tp, fib, topo.NoFailures())
	if next, ok, _ := e.Next(ids["h1"], h2.Addr); !ok || next != ids["h2"] {
		t.Fatalf("implicit default failed: %v %v", next, ok)
	}
}

func TestMatrix(t *testing.T) {
	tp, ids := lineTopo()
	h1a, h2a := addrOf(tp, ids["h1"]), addrOf(tp, ids["h2"])
	fib := FIB{}
	fib.Add(ids["sw1"], Rule{Match: pkt.HostPrefix(h2a), In: topo.NodeNone, Out: ids["sw2"]})
	fib.Add(ids["sw1"], Rule{Match: pkt.HostPrefix(h1a), In: topo.NodeNone, Out: ids["h1"]})
	fib.Add(ids["sw2"], Rule{Match: pkt.HostPrefix(h2a), In: topo.NodeNone, Out: ids["h2"]})
	fib.Add(ids["sw2"], Rule{Match: pkt.HostPrefix(h1a), In: topo.NodeNone, Out: ids["sw1"]})
	e := New(tp, fib, topo.NoFailures())
	m, err := e.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	// Edge nodes: h1, h2, fw; hosts as dests: h1, h2 → rows: h1→h2, h2→h1, fw→h1, fw→h2.
	if len(m) != 4 {
		t.Fatalf("matrix rows = %d, want 4: %+v", len(m), m)
	}
	found := false
	for _, row := range m {
		if row.From == ids["h1"] && row.DstHost == ids["h2"] {
			found = true
			if row.Via != ids["h2"] || row.Dropped {
				t.Fatalf("h1->h2 row wrong: %+v", row)
			}
		}
	}
	if !found {
		t.Fatal("missing h1->h2 row")
	}
}

func TestNextFromSwitchErrors(t *testing.T) {
	tp, ids := lineTopo()
	e := New(tp, FIB{}, topo.NoFailures())
	if _, _, err := e.Next(ids["sw1"], addrOf(tp, ids["h2"])); err == nil {
		t.Fatal("starting at a switch must error")
	}
}

// TestConsultedTables pins the table-read/liveness-read split: a walk's
// FIB reads are the nodes where hop decisions are evaluated — the start
// edge node, crossed fabric nodes, the dropping node — while failed rule
// targets routed around, implicit-default neighbors and the terminal edge
// node are liveness reads only.
func TestConsultedTables(t *testing.T) {
	// h1 - swA - swC - h2 with backup swB; swC failed, so swA reads swC's
	// LIVENESS (skipped rule target) but never its table.
	tp := topo.New()
	h1 := tp.AddHost("h1", pkt.MustParseAddr("10.0.0.1"))
	h2 := tp.AddHost("h2", pkt.MustParseAddr("10.0.0.2"))
	swA := tp.AddSwitch("swA")
	swB := tp.AddSwitch("swB")
	swC := tp.AddSwitch("swC")
	tp.AddLink(h1, swA)
	tp.AddLink(swA, swB)
	tp.AddLink(swA, swC)
	tp.AddLink(swB, h2)
	tp.AddLink(swC, h2)
	h2p := pkt.HostPrefix(pkt.MustParseAddr("10.0.0.2"))
	fib := FIB{}
	fib.Add(swA, Rule{Match: h2p, In: topo.NodeNone, Out: swC, Priority: 10})
	fib.Add(swA, Rule{Match: h2p, In: topo.NodeNone, Out: swB, Priority: 5})
	fib.Add(swB, Rule{Match: h2p, In: topo.NodeNone, Out: h2})
	fib.Add(swC, Rule{Match: h2p, In: topo.NodeNone, Out: h2})

	has := func(ns []topo.NodeID, n topo.NodeID) bool {
		for _, x := range ns {
			if x == n {
				return true
			}
		}
		return false
	}

	ef := New(tp, fib, topo.Failures(swC))
	consulted := ef.Consulted(h1, h2p.Addr)
	tables := ef.ConsultedTables(h1, h2p.Addr)
	if !has(consulted, swC) {
		t.Fatalf("failed target swC is a liveness read, must be consulted: %v", consulted)
	}
	if has(tables, swC) {
		t.Fatalf("swC's table is never read (rule skipped on liveness): %v", tables)
	}
	for _, n := range []topo.NodeID{h1, swA, swB} {
		if !has(tables, n) {
			t.Fatalf("hop-decision node %v missing from table reads %v", n, tables)
		}
	}
	if has(tables, h2) {
		t.Fatalf("terminal edge node's table is never read: %v", tables)
	}
	// Table reads are a subset of the consulted set.
	for _, n := range tables {
		if !has(consulted, n) {
			t.Fatalf("table read %v missing from consulted %v", n, consulted)
		}
	}

	// A dropped walk still read the dropping node's (possibly empty) table
	// — the NEGATIVE read that makes later rule installs dirty the check:
	// only swA routes, swB has no table and drops.
	fib3 := FIB{}
	fib3.Add(swA, Rule{Match: h2p, In: topo.NodeNone, Out: swB})
	e3 := New(tp, fib3, topo.NoFailures())
	if _, ok, err := e3.Next(h1, h2p.Addr); ok || err != nil {
		t.Fatalf("walk should drop at swB: ok=%v err=%v", ok, err)
	}
	tables3 := e3.ConsultedTables(h1, h2p.Addr)
	if !has(tables3, swB) {
		t.Fatalf("dropping node swB must be a table read: %v", tables3)
	}
}

func TestMemoization(t *testing.T) {
	tp, ids := lineTopo()
	h2 := pkt.HostPrefix(addrOf(tp, ids["h2"]))
	fib := FIB{}
	fib.Add(ids["sw1"], Rule{Match: h2, In: topo.NodeNone, Out: ids["sw2"]})
	fib.Add(ids["sw2"], Rule{Match: h2, In: topo.NodeNone, Out: ids["h2"]})
	e := New(tp, fib, topo.NoFailures())
	a, okA, _ := e.Next(ids["h1"], h2.Addr)
	b, okB, _ := e.Next(ids["h1"], h2.Addr)
	if a != b || okA != okB {
		t.Fatal("memoized result differs")
	}
}
