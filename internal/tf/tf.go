// Package tf compiles static-datapath forwarding state into transfer
// functions, playing the role VeriFlow/HSA play in the paper (§3.5): given
// a topology, per-switch forwarding tables and a failure scenario, it
// produces a function from a located packet to the next edge node
// (host, external world or middlebox). The verifier then models the whole
// static fabric as a single pseudo-node Ω whose behaviour is this function.
//
// Static forwarding loops are detected and reported as errors, mirroring
// VMN's behaviour of raising an exception on loops (footnote 5 and §3.5 of
// the paper); loop-freedom is what keeps the network axioms first-order.
package tf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/netverify/vmn/internal/fnv64"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/topo"
)

// ErrLoop is returned when the static forwarding state sends a packet
// around a cycle.
var ErrLoop = errors.New("tf: static forwarding loop")

// Rule is one forwarding entry of a switch (or of an edge node that needs
// explicit egress routing). Rules are selected by highest Priority first;
// among equal priorities, an ingress-specific rule beats a wildcard one and
// a longer prefix beats a shorter one. Rules whose Out node is failed are
// skipped, which is how backup paths (lower-priority rules) take over under
// failure scenarios.
type Rule struct {
	Match    pkt.Prefix  // destination prefix
	In       topo.NodeID // required ingress neighbor; NodeNone = any
	Out      topo.NodeID // next-hop neighbor
	Priority int
}

// FIB maps each node to its forwarding rules.
type FIB map[topo.NodeID][]Rule

// Add appends a rule to node n's table.
func (f FIB) Add(n topo.NodeID, r Rule) { f[n] = append(f[n], r) }

// Engine evaluates the transfer function for one failure scenario.
type Engine struct {
	topo *topo.Topology
	fib  FIB
	fail topo.FailureScenario

	sorted map[topo.NodeID][]Rule

	// memo caches Next results (and consulted/tableReads cache the
	// Consulted/ConsultedTables read sets); guarded by mu so the
	// explicit-state engine's parallel search workers can share one Engine.
	mu         sync.RWMutex
	memo       map[memoKey]memoVal
	consulted  map[memoKey][]topo.NodeID
	tableReads map[memoKey][]topo.NodeID

	fpKey []byte
	fp    uint64
}

type memoKey struct {
	from topo.NodeID
	dst  pkt.Addr
}

type memoVal struct {
	next topo.NodeID
	ok   bool
	err  error
}

// New builds an engine over the given topology, tables and failure
// scenario. The FIB is not copied; callers must not mutate it afterwards.
func New(t *topo.Topology, fib FIB, fail topo.FailureScenario) *Engine {
	e := &Engine{topo: t, fib: fib, fail: fail,
		sorted:     make(map[topo.NodeID][]Rule, len(fib)),
		memo:       map[memoKey]memoVal{},
		consulted:  map[memoKey][]topo.NodeID{},
		tableReads: map[memoKey][]topo.NodeID{},
	}
	for n, rules := range fib {
		rs := append([]Rule(nil), rules...)
		sort.SliceStable(rs, func(i, j int) bool {
			a, b := rs[i], rs[j]
			if a.Priority != b.Priority {
				return a.Priority > b.Priority
			}
			ai, bi := a.In != topo.NodeNone, b.In != topo.NodeNone
			if ai != bi {
				return ai
			}
			return a.Match.Len > b.Match.Len
		})
		e.sorted[n] = rs
	}
	e.computeFingerprint()
	return e
}

// computeFingerprint encodes the engine's behaviour-determining state —
// the failure scenario and the priority-sorted tables, which fix every
// hop decision — into a canonical byte key and its FNV-1a 64 hash. Two
// engines over the same topology with equal keys are behaviourally
// identical, which is what lets callers share compiled engines (and their
// warm memoization) across verification calls while still picking up
// forwarding-state mutations.
func (e *Engine) computeFingerprint() {
	b := make([]byte, 0, 256)
	fail := e.fail.Nodes()
	b = binary.AppendUvarint(b, uint64(len(fail)))
	for _, n := range fail {
		b = binary.AppendVarint(b, int64(n))
	}
	nodes := make([]topo.NodeID, 0, len(e.sorted))
	for n := range e.sorted {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	b = binary.AppendUvarint(b, uint64(len(nodes)))
	for _, n := range nodes {
		b = binary.AppendVarint(b, int64(n))
		rules := e.sorted[n]
		b = binary.AppendUvarint(b, uint64(len(rules)))
		for _, r := range rules {
			b = binary.BigEndian.AppendUint32(b, uint32(r.Match.Addr))
			b = append(b, byte(r.Match.Len))
			b = binary.AppendVarint(b, int64(r.In))
			b = binary.AppendVarint(b, int64(r.Out))
			b = binary.AppendVarint(b, int64(r.Priority))
		}
	}
	e.fpKey = b
	e.fp = fnv64.Sum(b)
}

// Fingerprint returns the FNV-1a 64 hash of the engine's canonical
// behaviour key (scenario + sorted tables).
func (e *Engine) Fingerprint() uint64 { return e.fp }

// FingerprintKey returns the full canonical behaviour key for collision
// verification. Callers must not mutate it.
func (e *Engine) FingerprintKey() []byte { return e.fpKey }

// Failure returns the engine's failure scenario.
func (e *Engine) Failure() topo.FailureScenario { return e.fail }

// FIB returns the forwarding state the engine was compiled from (not
// copied; callers must not mutate it).
func (e *Engine) FIB() FIB { return e.fib }

// hop picks the next hop at node `at` for a packet to dst that arrived from
// `prev`. The boolean result is false when the packet is dropped
// (no applicable rule and no implicit default).
func (e *Engine) hop(at, prev topo.NodeID, dst pkt.Addr) (topo.NodeID, bool) {
	return e.hopConsult(at, prev, dst, nil)
}

// hopConsult is hop with an optional probe: consult is invoked for every
// node whose LIVENESS the decision reads beyond the nodes the walk itself
// visits — failed rule targets that are routed around, and every neighbor
// examined by the implicit-default ambiguity check. Together with the
// visited nodes this is the complete read set of the decision, which is
// what makes Consulted a sound dependency footprint (see Consulted).
func (e *Engine) hopConsult(at, prev topo.NodeID, dst pkt.Addr, consult func(topo.NodeID)) (topo.NodeID, bool) {
	for _, r := range e.sorted[at] {
		if r.In != topo.NodeNone && r.In != prev {
			continue
		}
		if !r.Match.Matches(dst) {
			continue
		}
		if e.fail.Failed(r.Out) && e.topo.Node(r.Out).Kind == topo.Switch {
			if consult != nil {
				consult(r.Out) // liveness read: skipped because failed
			}
			continue // route around failed fabric elements
		}
		return r.Out, true
	}
	// Implicit default for edge nodes with a single live link. The choice
	// reads the liveness of every neighbor.
	if e.topo.Node(at).IsEdge() {
		var candidate topo.NodeID = topo.NodeNone
		for _, nb := range e.topo.Neighbors(at) {
			if consult != nil {
				consult(nb)
			}
			if e.fail.Failed(nb) && e.topo.Node(nb).Kind == topo.Switch {
				continue
			}
			if candidate != topo.NodeNone {
				return topo.NodeNone, false // ambiguous: require explicit rules
			}
			candidate = nb
		}
		if candidate != topo.NodeNone {
			return candidate, true
		}
	}
	return topo.NodeNone, false
}

// Next evaluates the compiled transfer function: it carries a packet
// located at edge node `from` with destination address dst across the
// switch fabric and returns the edge node where it next surfaces. ok=false
// means the fabric drops the packet (blackhole); ErrLoop reports a static
// forwarding loop. Next is safe for concurrent use.
func (e *Engine) Next(from topo.NodeID, dst pkt.Addr) (next topo.NodeID, ok bool, err error) {
	k := memoKey{from, dst}
	e.mu.RLock()
	v, hit := e.memo[k]
	e.mu.RUnlock()
	if hit {
		return v.next, v.ok, v.err
	}
	next, ok, err = e.walk(from, dst)
	e.mu.Lock()
	e.memo[k] = memoVal{next, ok, err}
	e.mu.Unlock()
	return next, ok, err
}

func (e *Engine) walk(from topo.NodeID, dst pkt.Addr) (topo.NodeID, bool, error) {
	if !e.topo.Node(from).IsEdge() {
		return topo.NodeNone, false, fmt.Errorf("tf: transfer function must start at an edge node, got %s", e.topo.Node(from).Name)
	}
	prev := topo.NodeNone
	cur := from
	visited := map[topo.NodeID]bool{}
	for {
		nxt, ok := e.hop(cur, prev, dst)
		if !ok {
			return topo.NodeNone, false, nil
		}
		n := e.topo.Node(nxt)
		if n.IsEdge() {
			return nxt, true, nil
		}
		if visited[nxt] {
			return topo.NodeNone, false, fmt.Errorf("%w: dst %s revisits %s", ErrLoop, dst, n.Name)
		}
		visited[nxt] = true
		prev, cur = cur, nxt
	}
}

// Consulted returns every node whose forwarding state OR liveness the
// transfer function reads when carrying a packet from edge node `from`
// toward dst: the starting node, every fabric node the packet crosses,
// the edge node where it surfaces, every failed rule target the walk
// routes around, and every neighbor examined by an implicit-default
// choice. A packet dropped mid-fabric still consulted the table of the
// node that dropped it, and a looping walk consulted every node on the
// cycle, so both are included — Consulted never errors. The result is the
// complete read set of the walk and hence the dependency footprint
// incremental verification dirties and fingerprints on: a forwarding-state
// or liveness change at any node NOT in this set cannot alter the walk
// (the walk is deterministic, and every table or liveness bit it reads
// belongs to a node in the set). Consulted is memoized and safe for
// concurrent use; callers must not mutate the returned slice.
func (e *Engine) Consulted(from topo.NodeID, dst pkt.Addr) []topo.NodeID {
	nodes, _ := e.reads(from, dst)
	return nodes
}

// ConsultedTables returns the subset of Consulted whose forwarding TABLES
// the walk reads: every node where a hop decision was evaluated — the
// starting edge node, each fabric node crossed, the node that dropped the
// packet or closed a loop. A hop decision reads the node's complete rule
// list for dst, so this includes negative reads: a lookup that matched
// only a covering low-priority rule (or nothing at all, falling through to
// the implicit default) still read the absence of any more-specific
// match, and a rule installed later that would have won must dirty every
// check that performed such a lookup. Prefix-granular dependency tracking
// (internal/incr) therefore records one (node, dst) read atom per entry of
// this set; nodes consulted for liveness only (failed rule targets routed
// around, implicit-default neighbors, the edge node where the packet
// surfaces) are excluded — their tables were never read, so forwarding
// changes there cannot alter the walk. Memoized and safe for concurrent
// use; callers must not mutate the returned slice.
func (e *Engine) ConsultedTables(from topo.NodeID, dst pkt.Addr) []topo.NodeID {
	_, tables := e.reads(from, dst)
	return tables
}

// reads computes (and memoizes) the complete read set of the walk
// (from, dst) — all consulted nodes, plus the table-read subset.
func (e *Engine) reads(from topo.NodeID, dst pkt.Addr) (nodes, tables []topo.NodeID) {
	k := memoKey{from, dst}
	e.mu.RLock()
	v, hit := e.consulted[k]
	tv := e.tableReads[k]
	e.mu.RUnlock()
	if hit {
		return v, tv
	}
	seen := map[topo.NodeID]bool{from: true}
	nodes = []topo.NodeID{from}
	add := func(n topo.NodeID) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	if e.topo.Node(from).IsEdge() {
		// Every `cur` position evaluates a hop decision and hence reads the
		// node's table; the walk starts at `from`.
		tables = append(tables, from)
		prev := topo.NodeNone
		cur := from
		visited := map[topo.NodeID]bool{}
		for {
			nxt, ok := e.hopConsult(cur, prev, dst, add)
			if !ok {
				break
			}
			stop := e.topo.Node(nxt).IsEdge() || visited[nxt]
			add(nxt)
			if stop {
				break
			}
			visited[nxt] = true
			tables = append(tables, nxt)
			prev, cur = cur, nxt
		}
	}
	e.mu.Lock()
	e.consulted[k] = nodes
	e.tableReads[k] = tables
	e.mu.Unlock()
	return nodes, tables
}

// Entry is one row of the compiled pseudo-switch: packets at From destined
// to an address owned by DstHost surface next at Via.
type Entry struct {
	From    topo.NodeID
	DstHost topo.NodeID
	Via     topo.NodeID
	Dropped bool
}

// Matrix compiles the transfer function into explicit rows, one per
// (edge node, destination host) pair — the finite object the encoder turns
// into Ω axioms. It fails on any forwarding loop.
func (e *Engine) Matrix() ([]Entry, error) {
	var dests []topo.NodeID
	for _, id := range e.topo.EdgeNodes() {
		n := e.topo.Node(id)
		if n.Kind == topo.Host || n.Kind == topo.External {
			dests = append(dests, id)
		}
	}
	var out []Entry
	for _, from := range e.topo.EdgeNodes() {
		for _, d := range dests {
			if from == d {
				continue
			}
			via, ok, err := e.Next(from, e.topo.Node(d).Addr)
			if err != nil {
				return nil, err
			}
			out = append(out, Entry{From: from, DstHost: d, Via: via, Dropped: !ok})
		}
	}
	return out, nil
}

// Path traces the sequence of edge nodes a packet visits from `from` to the
// host owning dst, treating middleboxes as pass-through (their mutable
// behaviour is irrelevant for static pipeline checking). It returns the
// visited edge nodes in order, ending with the destination host, and
// errors on loops (including loops through middleboxes) or if the packet
// is dropped by the fabric.
func (e *Engine) Path(from topo.NodeID, dst pkt.Addr) ([]topo.NodeID, error) {
	var path []topo.NodeID
	cur := from
	seen := map[topo.NodeID]bool{cur: true}
	for {
		next, ok, err := e.Next(cur, dst)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("tf: packet from %s to %s dropped at %s",
				e.topo.Node(from).Name, dst, e.topo.Node(cur).Name)
		}
		path = append(path, next)
		n := e.topo.Node(next)
		if n.Kind == topo.Host || n.Kind == topo.External {
			if n.Addr == dst || n.Kind == topo.External {
				return path, nil
			}
			return nil, fmt.Errorf("tf: packet to %s delivered to wrong host %s", dst, n.Name)
		}
		if seen[next] {
			return nil, fmt.Errorf("%w: middlebox cycle through %s", ErrLoop, n.Name)
		}
		seen[next] = true
		cur = next
	}
}
