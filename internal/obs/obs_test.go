package obs

import (
	"strings"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// The nil-is-disabled contract: every call on nil handles is a no-op.
	var o *Obs
	sp := o.Span("root")
	if sp.Enabled() {
		t.Fatal("span from nil Obs must be disabled")
	}
	sp.Child("c").Label("x").End()
	sp.End()

	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(7)
	r.Histogram("h", LatencyBuckets).Observe(0.5)
	r.RegisterFunc("f", func() float64 { return 1 })
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshots nil")
	}
	var tr *Tracer
	if got := tr.Drain(); got != nil {
		t.Fatal("nil tracer drains nil")
	}
}

func TestSpanTreeAndDrain(t *testing.T) {
	o := New(16)
	root := o.Span("apply")
	child := root.Child("solve").Label("class=0")
	child.End()
	root.End()

	spans := o.Trace.Drain()
	if len(spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(spans))
	}
	// Children end first (record order is end order).
	if spans[0].Name != "solve" || spans[1].Name != "apply" {
		t.Fatalf("unexpected record order: %+v", spans)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child should link to root: %+v", spans)
	}
	if spans[0].Label != "class=0" {
		t.Fatalf("label lost: %+v", spans[0])
	}
	if spans[0].DurationNs < 0 || spans[0].StartNs < spans[1].StartNs {
		t.Fatalf("timestamps inconsistent: %+v", spans)
	}
	if got := o.Trace.Drain(); len(got) != 0 {
		t.Fatalf("drain must clear the ring, got %d spans", len(got))
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(4)
	o := &Obs{Trace: tr}
	for i := 0; i < 10; i++ {
		o.Span("s").End()
	}
	spans := tr.Drain()
	if len(spans) != 4 {
		t.Fatalf("ring capacity 4, got %d spans", len(spans))
	}
	// The survivors are the newest four, in order.
	for i := 1; i < len(spans); i++ {
		if spans[i].ID != spans[i-1].ID+1 {
			t.Fatalf("ring order broken: %+v", spans)
		}
	}
	if spans[len(spans)-1].ID != 10 {
		t.Fatalf("newest span must survive, got ID %d", spans[len(spans)-1].ID)
	}
}

func TestRegistrySnapshotAndPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("vmn_test_total").Add(3)
	r.Gauge("vmn_test_groups").Set(9)
	r.RegisterFunc("vmn_test_func", func() float64 { return 2.5 })
	h := r.Histogram("vmn_test_size", []float64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(100)

	snap := r.Snapshot()
	if snap["vmn_test_total"] != 3 || snap["vmn_test_groups"] != 9 || snap["vmn_test_func"] != 2.5 {
		t.Fatalf("scalar snapshot wrong: %v", snap)
	}
	// Cumulative buckets: ≤1: 1, ≤2: 1, ≤4: 2; count 3; sum 104.
	if snap["vmn_test_size_le_1"] != 1 || snap["vmn_test_size_le_2"] != 1 || snap["vmn_test_size_le_4"] != 2 {
		t.Fatalf("histogram buckets wrong: %v", snap)
	}
	if snap["vmn_test_size_count"] != 3 || snap["vmn_test_size_sum"] != 104 {
		t.Fatalf("histogram sum/count wrong: %v", snap)
	}

	// Idempotent registration: same instances by name.
	if r.Counter("vmn_test_total").Value() != 3 {
		t.Fatal("re-registration must return the same counter")
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE vmn_test_total counter",
		"vmn_test_total 3",
		"vmn_test_groups 9",
		"vmn_test_func 2.5",
		`vmn_test_size_bucket{le="4"} 2`,
		`vmn_test_size_bucket{le="+Inf"} 3`,
		"vmn_test_size_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, text)
		}
	}
}
