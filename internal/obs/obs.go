// Package obs is VMN's observability substrate: phase tracing (lightweight
// spans over the verify pipeline, ring-buffered) and a metrics registry
// (counters, gauges, fixed-bucket histograms) with Prometheus text and
// JSON-snapshot export. The package is dependency-free so every layer —
// incr, core, the daemon, the bench harness — can report into one handle.
//
// Everything is designed around a nil-is-disabled contract: an *Obs (or
// *Tracer, *Registry) that is nil accepts every call as a no-op without
// allocating, so instrumented code needs no feature flags — the hot path
// pays one nil check when observability is off. The disabled-mode overhead
// budget (≤1% on the churn bench) is documented and measured in DESIGN.md.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Obs bundles the tracer and metrics registry one subsystem threads
// through its pipeline. A nil *Obs disables all instrumentation.
type Obs struct {
	Trace   *Tracer
	Metrics *Registry
}

// New builds an Obs with a metrics registry and — when traceCap > 0 — a
// span ring buffer of that capacity.
func New(traceCap int) *Obs {
	o := &Obs{Metrics: NewRegistry()}
	if traceCap > 0 {
		o.Trace = NewTracer(traceCap)
	}
	return o
}

// Span starts a root span (no-op on a nil Obs or disabled tracer).
func (o *Obs) Span(name string) Span {
	if o == nil || o.Trace == nil {
		return Span{}
	}
	return o.Trace.span(name, 0)
}

// SpanRecord is one completed span as stored in the ring buffer and
// rendered on the wire. Start is nanoseconds since the tracer was created
// (monotonic); ID/Parent reconstruct the tree.
type SpanRecord struct {
	ID         int64  `json:"id"`
	Parent     int64  `json:"parent,omitempty"`
	Name       string `json:"name"`
	Label      string `json:"label,omitempty"`
	StartNs    int64  `json:"start_ns"`
	DurationNs int64  `json:"duration_ns"`
}

// Tracer records completed spans into a fixed-capacity ring buffer:
// recording never blocks on a consumer and memory stays bounded no matter
// how long the process runs. Span IDs are assigned at start time from an
// atomic counter, so with a single-worker pipeline the recorded stream is
// deterministic (the golden-file tests rely on this).
type Tracer struct {
	start time.Time
	ids   atomic.Int64

	mu   sync.Mutex
	buf  []SpanRecord // ring storage, len == cap once full
	head int          // next write position
	full bool
}

// NewTracer builds a tracer with the given ring capacity (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{start: time.Now(), buf: make([]SpanRecord, 0, capacity)}
}

func (t *Tracer) span(name string, parent int64) Span {
	return Span{
		tr:     t,
		id:     t.ids.Add(1),
		parent: parent,
		name:   name,
		start:  time.Since(t.start),
	}
}

func (t *Tracer) record(r SpanRecord) {
	t.mu.Lock()
	if !t.full && len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, r)
		if len(t.buf) == cap(t.buf) {
			t.full = true
		}
	} else {
		t.buf[t.head] = r
		t.head = (t.head + 1) % len(t.buf)
	}
	t.mu.Unlock()
}

// Drain returns the buffered spans in record (end-time) order and clears
// the ring. Nil tracers drain empty.
func (t *Tracer) Drain() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.buf))
	if t.full {
		out = append(out, t.buf[t.head:]...)
		out = append(out, t.buf[:t.head]...)
	} else {
		out = append(out, t.buf...)
	}
	t.buf = t.buf[:0]
	t.head, t.full = 0, false
	return out
}

// Span is an in-flight phase measurement. The zero value is a disabled
// span: Child and End (and friends) are no-ops, so instrumented code never
// branches on whether tracing is on.
type Span struct {
	tr          *Tracer
	id, parent  int64
	name, label string
	start       time.Duration
}

// Enabled reports whether the span records anywhere. Callers use it to
// skip label formatting when tracing is off.
func (s Span) Enabled() bool { return s.tr != nil }

// Child starts a sub-span of s.
func (s Span) Child(name string) Span {
	if s.tr == nil {
		return Span{}
	}
	return s.tr.span(name, s.id)
}

// Label attaches a label to the span, returning it for chaining; the last
// label wins. Callers guard expensive formatting with Enabled.
func (s Span) Label(label string) Span {
	s.label = label
	return s
}

// End completes the span and records it.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	s.tr.record(SpanRecord{
		ID:         s.id,
		Parent:     s.parent,
		Name:       s.name,
		Label:      s.label,
		StartNs:    s.start.Nanoseconds(),
		DurationNs: (time.Since(s.tr.start) - s.start).Nanoseconds(),
	})
}
