package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. Registration is idempotent by name — a
// re-registration returns (or replaces, for gauge funcs) the existing
// metric, so a fresh Session over a long-lived registry keeps counting
// into the same series. A nil *Registry disables every call.
//
// Naming scheme (see DESIGN.md "Observability"): vmn_<subsystem>_<what>
// with _total for counters and _seconds for time histograms, Prometheus
// base units throughout.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]func() float64{},
	}
}

// Counter is a monotonically increasing value. Nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable value. Nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets (cumulative on export,
// like Prometheus: bucket i counts observations ≤ Bounds[i], plus an
// implicit +Inf bucket) and tracks sum and count. Nil-safe.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// LatencyBuckets are the default solve/apply latency bounds, in seconds
// (100µs .. 10s, roughly ×2.5 per step).
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// FractionBuckets suit ratios in [0, 1] (dirty fraction, hit rates).
var FractionBuckets = []float64{0, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1}

// SizeBuckets suit small cardinalities (class sizes, group sizes).
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// Counter returns (registering on first use) the named counter. Nil
// registries return nil, which absorbs calls.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram with
// the given bucket upper bounds (must be sorted ascending; ignored when
// the name is already registered).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Int64, len(h.bounds)+1)
		r.hists[name] = h
	}
	return h
}

// RegisterFunc registers a gauge collected by calling fn at export time —
// the zero-hot-path-cost pattern for values a subsystem already tracks
// (cache hit counts, solver statistics). Re-registration replaces fn, so
// the latest verifier owns the series.
func (r *Registry) RegisterFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Snapshot flattens every metric into a sorted-key map: counters and
// gauges by name, func gauges evaluated now, histograms expanded to
// name_le_<bound> cumulative buckets plus name_sum / name_count.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64)
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = float64(g.Value())
	}
	for name, fn := range r.funcs {
		out[name] = fn()
	}
	for name, h := range r.hists {
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			out[name+"_le_"+formatBound(b)] = float64(cum)
		}
		out[name+"_sum"] = math.Float64frombits(h.sum.Load())
		out[name+"_count"] = float64(h.count.Load())
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (untyped lines for funcs; counter/gauge/histogram types
// declared).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	add := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	for name, c := range r.counters {
		add("# TYPE %s counter\n%s %d\n", name, name, c.Value())
	}
	for name, g := range r.gauges {
		add("# TYPE %s gauge\n%s %d\n", name, name, g.Value())
	}
	for name, fn := range r.funcs {
		add("# TYPE %s gauge\n%s %s\n", name, name, formatValue(fn()))
	}
	for name, h := range r.hists {
		var b []byte
		b = append(b, "# TYPE "+name+" histogram\n"...)
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			b = append(b, fmt.Sprintf("%s_bucket{le=%q} %d\n", name, formatBound(bound), cum)...)
		}
		cum += h.counts[len(h.bounds)].Load()
		b = append(b, fmt.Sprintf("%s_bucket{le=\"+Inf\"} %d\n", name, cum)...)
		b = append(b, fmt.Sprintf("%s_sum %s\n", name, formatValue(math.Float64frombits(h.sum.Load())))...)
		b = append(b, fmt.Sprintf("%s_count %d\n", name, h.count.Load())...)
		lines = append(lines, string(b))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := io.WriteString(w, l); err != nil {
			return err
		}
	}
	return nil
}

func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }

func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
