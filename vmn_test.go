package vmn

import (
	"testing"
)

// TestPublicAPIRoundTrip exercises the whole public surface the way a
// downstream user would: build a network, verify, break it, get a trace.
func TestPublicAPIRoundTrip(t *testing.T) {
	addrA := MustParseAddr("10.0.0.1")
	addrB := MustParseAddr("10.0.0.2")

	topo := NewTopology()
	hA := topo.AddHost("hA", addrA)
	hB := topo.AddHost("hB", addrB)
	sw := topo.AddSwitch("sw")
	fwNode := topo.AddMiddlebox("fw", "firewall")
	topo.AddLink(hA, sw)
	topo.AddLink(hB, sw)
	topo.AddLink(fwNode, sw)

	fib := FIB{}
	for _, h := range []struct {
		node NodeID
		addr Addr
	}{{hA, addrA}, {hB, addrB}} {
		fib.Add(sw, FwdRule{Match: HostPrefix(h.addr), In: fwNode, Out: h.node, Priority: 20})
		fib.Add(sw, FwdRule{Match: HostPrefix(h.addr), In: -1, Out: fwNode, Priority: 10})
	}

	firewall := &LearningFirewall{
		InstanceName: "fw",
		ACL: []ACLEntry{
			DenyEntry(HostPrefix(addrB), HostPrefix(addrA)),
			DenyEntry(HostPrefix(addrA), HostPrefix(addrB)),
		},
		DefaultAllow: true,
	}
	net := &Network{
		Topo:   topo,
		Boxes:  []MiddleboxInstance{{Node: fwNode, Model: firewall}},
		FIBFor: func(FailureScenario) FIB { return fib },
	}
	v, err := NewVerifier(net, Options{})
	if err != nil {
		t.Fatal(err)
	}

	iso := SimpleIsolation{Dst: hA, SrcAddr: addrB}
	reports, err := v.VerifyInvariant(iso)
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Result.Outcome != Holds || !reports[0].Satisfied {
		t.Fatalf("configured network should hold: %v", reports[0].Result.Outcome)
	}

	firewall.ACL = nil
	reports, err = v.VerifyInvariant(iso)
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Result.Outcome != Violated {
		t.Fatalf("unprotected network should violate: %v", reports[0].Result.Outcome)
	}
	if len(reports[0].Result.Trace) == 0 {
		t.Fatal("violation must produce a trace")
	}
}

// TestPublicAPIMDL parses and runs a model written in the paper's
// modelling language through the public facade.
func TestPublicAPIMDL(t *testing.T) {
	cls, err := ParseModel(`
@FailClosed
class Blocker () {
  def model (p: Packet) = {
    _ => forward(Seq.empty)
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := InstantiateModel(cls, "b0", MDLConfig{}, NewClassRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if m.Type() != "blocker" {
		t.Fatalf("type = %s", m.Type())
	}
}

// TestPublicAPIPipeline checks the static pipeline-invariant entry points.
func TestPublicAPIPipeline(t *testing.T) {
	// Single host behind a firewall; require firewall traversal.
	inet := MustParseAddr("8.8.8.8")
	hostA := MustParseAddr("10.0.0.1")
	topo := NewTopology()
	internet := topo.AddExternal("internet", inet)
	sw := topo.AddSwitch("sw")
	fwn := topo.AddMiddlebox("fw", "firewall")
	h := topo.AddHost("h", hostA)
	topo.AddLink(internet, sw)
	topo.AddLink(fwn, sw)
	topo.AddLink(h, sw)
	fib := FIB{}
	fib.Add(sw, FwdRule{Match: HostPrefix(hostA), In: fwn, Out: h, Priority: 20})
	fib.Add(sw, FwdRule{Match: HostPrefix(hostA), In: -1, Out: fwn, Priority: 10})

	eng := NewTransferEngine(topo, fib, NoFailures())
	inv := PipelineSequence{Name: "via-fw", From: internet, DstPrefix: HostPrefix(hostA), MBTypes: []string{"firewall"}}
	if vs := CheckPipelineSequence(topo, eng, inv); len(vs) != 0 {
		t.Fatalf("pipeline should hold: %v", vs)
	}
	bad := PipelineSequence{Name: "via-cache", From: internet, DstPrefix: HostPrefix(hostA), MBTypes: []string{"cache"}}
	if vs := CheckPipelineSequence(topo, eng, bad); len(vs) != 1 {
		t.Fatalf("missing cache should violate: %v", vs)
	}
}
