// MDL model: write a middlebox in the paper's modelling language (§3.4,
// Listing 1 verbatim), instantiate it, and use it inside a verified
// network interchangeably with the native Go models.
package main

import (
	"fmt"
	"log"

	vmn "github.com/netverify/vmn"
)

// Listing 1 from the paper, verbatim.
const learningFirewallMDL = `
@FailClosed
class LearningFirewall (acl: Set[(Address, Address)]) {
  val established : Set[Flow]
  def model (p: Packet) = {
    when established.contains(flow(p)) =>
      forward (Seq(p))
    when acl.contains((p.src, p.dest)) =>
      established += flow(p)
      forward(Seq(p))
    _ =>
      forward(Seq.empty)
  }
}
`

func main() {
	cls, err := vmn.ParseModel(learningFirewallMDL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed MDL class %q: %d config parameter(s), %d state variable(s), %d clauses\n",
		cls.Name, len(cls.Params), len(cls.State), len(cls.Clauses))

	addrA := vmn.MustParseAddr("10.0.0.1")
	addrB := vmn.MustParseAddr("10.0.0.2")

	// The ACL permits only A -> B; Listing 1 is default-deny, so B can
	// never initiate to A — but replies to A's flows pass (hole punching).
	model, err := vmn.InstantiateModel(cls, "fw0", vmn.MDLConfig{
		"acl": [][2]vmn.Addr{{addrA, addrB}},
	}, vmn.NewClassRegistry())
	if err != nil {
		log.Fatal(err)
	}

	topo := vmn.NewTopology()
	hA := topo.AddHost("hA", addrA)
	hB := topo.AddHost("hB", addrB)
	sw := topo.AddSwitch("sw")
	fwNode := topo.AddMiddlebox("fw", "firewall")
	topo.AddLink(hA, sw)
	topo.AddLink(hB, sw)
	topo.AddLink(fwNode, sw)
	fib := vmn.FIB{}
	for _, h := range []struct {
		node vmn.NodeID
		addr vmn.Addr
	}{{hA, addrA}, {hB, addrB}} {
		fib.Add(sw, vmn.FwdRule{Match: vmn.HostPrefix(h.addr), In: fwNode, Out: h.node, Priority: 20})
		fib.Add(sw, vmn.FwdRule{Match: vmn.HostPrefix(h.addr), In: -1, Out: fwNode, Priority: 10})
	}

	net := &vmn.Network{
		Topo:   topo,
		Boxes:  []vmn.MiddleboxInstance{{Node: fwNode, Model: model}},
		FIBFor: func(vmn.FailureScenario) vmn.FIB { return fib },
	}
	v, err := vmn.NewVerifier(net, vmn.Options{})
	if err != nil {
		log.Fatal(err)
	}

	checks := []vmn.Invariant{
		vmn.FlowIsolation{Dst: hA, SrcAddr: addrB, Label: "hA only hears replies from hB"},
		vmn.Reachability{Dst: hB, SrcAddr: addrA, Label: "hA can reach hB"},
		vmn.Reachability{Dst: hA, SrcAddr: addrB, Label: "hB replies can reach hA"},
	}
	for _, c := range checks {
		reports, err := v.VerifyInvariant(c)
		if err != nil {
			log.Fatal(err)
		}
		status := "SATISFIED"
		if !reports[0].Satisfied {
			status = "VIOLATED"
		}
		fmt.Printf("%-34s %-9s (outcome=%v, engine=%s)\n",
			c.Name(), status, reports[0].Result.Outcome, reports[0].Engine)
	}
}
