// Enterprise: the paper's §5.3.1 scenario — an enterprise network behind a
// stateful firewall with public, private (flow-isolated) and quarantined
// (node-isolated) subnets. Verifies all three policies, including under
// firewall failure, then demonstrates a quarantine breach.
package main

import (
	"fmt"
	"log"

	vmn "github.com/netverify/vmn"
)

func main() {
	inet := vmn.MustParseAddr("8.8.8.8")
	pub := vmn.MustParseAddr("10.0.0.1")  // public subnet host
	priv := vmn.MustParseAddr("10.1.0.1") // private subnet host
	quar := vmn.MustParseAddr("10.2.0.1") // quarantined subnet host

	topo := vmn.NewTopology()
	internet := topo.AddExternal("internet", inet)
	swO := topo.AddSwitch("swO")
	fwNode := topo.AddMiddlebox("fw", "firewall")
	swI := topo.AddSwitch("swI")
	hPub := topo.AddHost("pub", pub)
	hPriv := topo.AddHost("priv", priv)
	hQuar := topo.AddHost("quar", quar)
	topo.AddLink(internet, swO)
	topo.AddLink(swO, fwNode)
	topo.AddLink(fwNode, swI)
	topo.AddLink(hPub, swI)
	topo.AddLink(hPriv, swI)
	topo.AddLink(hQuar, swI)

	inside := vmn.Prefix{Addr: vmn.MustParseAddr("10.0.0.0"), Len: 8}
	fib := vmn.FIB{}
	fib.Add(swO, vmn.FwdRule{Match: inside, In: internet, Out: fwNode, Priority: 10})
	fib.Add(swO, vmn.FwdRule{Match: vmn.HostPrefix(inet), In: fwNode, Out: internet, Priority: 10})
	fib.Add(fwNode, vmn.FwdRule{Match: inside, In: -1, Out: swI, Priority: 10})
	fib.Add(fwNode, vmn.FwdRule{Match: vmn.Prefix{}, In: -1, Out: swO, Priority: 5})
	for _, h := range []struct {
		node vmn.NodeID
		addr vmn.Addr
	}{{hPub, pub}, {hPriv, priv}, {hQuar, quar}} {
		fib.Add(swI, vmn.FwdRule{Match: vmn.HostPrefix(h.addr), In: -1, Out: h.node, Priority: 10})
	}
	fib.Add(swI, vmn.FwdRule{Match: vmn.Prefix{}, In: -1, Out: fwNode, Priority: 1})

	// §5.3.1 policy, default deny: public talks both ways, private may
	// only initiate, quarantined gets nothing.
	firewall := vmn.NewLearningFirewall("fw",
		vmn.AllowEntry(vmn.HostPrefix(inet), vmn.HostPrefix(pub)),
		vmn.AllowEntry(vmn.HostPrefix(pub), vmn.HostPrefix(inet)),
		vmn.AllowEntry(vmn.HostPrefix(priv), vmn.HostPrefix(inet)),
	)

	net := &vmn.Network{
		Topo:   topo,
		Boxes:  []vmn.MiddleboxInstance{{Node: fwNode, Model: firewall}},
		FIBFor: func(vmn.FailureScenario) vmn.FIB { return fib },
	}
	v, err := vmn.NewVerifier(net, vmn.Options{
		// Verify fault-free AND under firewall failure (§2.1: invariants
		// predicated on failures).
		Scenarios: []vmn.FailureScenario{vmn.NoFailures(), vmn.Failures(fwNode)},
	})
	if err != nil {
		log.Fatal(err)
	}

	invariants := []vmn.Invariant{
		vmn.Reachability{Dst: hPub, SrcAddr: inet, Label: "public accepts inbound"},
		vmn.FlowIsolation{Dst: hPriv, SrcAddr: inet, Label: "private is flow-isolated"},
		vmn.SimpleIsolation{Dst: hQuar, SrcAddr: inet, Label: "quarantined is node-isolated"},
		vmn.SimpleIsolation{Dst: internet, SrcAddr: quar, Label: "quarantined cannot exfiltrate"},
	}
	reports, err := v.VerifyAll(invariants, false)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		scen := "fault-free"
		if r.Scenario.Count() > 0 {
			scen = "fw-failed "
		}
		status := "SATISFIED"
		if !r.Satisfied {
			status = "violated "
		}
		fmt.Printf("[%s] %-32s %-9s (outcome=%v)\n", scen, r.Invariant.Name(), status, r.Result.Outcome)
	}

	// Note: "public accepts inbound" is *expected* to fail under firewall
	// failure — a fail-closed firewall cuts public reachability. That is
	// exactly the kind of fact VMN's failure scenarios surface.
	fmt.Println()
	fmt.Println("injecting quarantine breach (stray allow rule)...")
	firewall.ACL = append(firewall.ACL, vmn.AllowEntry(vmn.HostPrefix(inet), vmn.HostPrefix(quar)))
	reports, err = v.VerifyInvariant(invariants[2])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quarantine invariant now: %v\n", reports[0].Result.Outcome)
	for _, e := range reports[0].Result.Trace {
		fmt.Printf("  %s\n", e)
	}
}
