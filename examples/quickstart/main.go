// Quickstart: build a two-host network with a stateful firewall, verify an
// isolation invariant, then delete the protective rule and watch VMN
// produce the violating packet schedule.
package main

import (
	"fmt"
	"log"

	vmn "github.com/netverify/vmn"
)

func main() {
	addrA := vmn.MustParseAddr("10.0.0.1")
	addrB := vmn.MustParseAddr("10.0.0.2")

	// Topology: hA and hB behind one switch, with a firewall on a stick;
	// routing steers all hA<->hB traffic through the firewall.
	topo := vmn.NewTopology()
	hA := topo.AddHost("hA", addrA)
	hB := topo.AddHost("hB", addrB)
	sw := topo.AddSwitch("sw")
	fwNode := topo.AddMiddlebox("fw", "firewall")
	topo.AddLink(hA, sw)
	topo.AddLink(hB, sw)
	topo.AddLink(fwNode, sw)

	fib := vmn.FIB{}
	for _, h := range []struct {
		node vmn.NodeID
		addr vmn.Addr
	}{{hA, addrA}, {hB, addrB}} {
		fib.Add(sw, vmn.FwdRule{Match: vmn.HostPrefix(h.addr), In: fwNode, Out: h.node, Priority: 20})
		fib.Add(sw, vmn.FwdRule{Match: vmn.HostPrefix(h.addr), In: -1 /* any */, Out: fwNode, Priority: 10})
	}

	// Policy: hB must never talk to hA (deny both directions so reply
	// traffic cannot leak either), everything else allowed.
	firewall := &vmn.LearningFirewall{
		InstanceName: "fw",
		ACL: []vmn.ACLEntry{
			vmn.DenyEntry(vmn.HostPrefix(addrB), vmn.HostPrefix(addrA)),
			vmn.DenyEntry(vmn.HostPrefix(addrA), vmn.HostPrefix(addrB)),
		},
		DefaultAllow: true,
	}

	net := &vmn.Network{
		Topo:   topo,
		Boxes:  []vmn.MiddleboxInstance{{Node: fwNode, Model: firewall}},
		FIBFor: func(vmn.FailureScenario) vmn.FIB { return fib },
	}
	v, err := vmn.NewVerifier(net, vmn.Options{})
	if err != nil {
		log.Fatal(err)
	}

	iso := vmn.SimpleIsolation{Dst: hA, SrcAddr: addrB, Label: "hB cannot reach hA"}
	reports, err := v.VerifyInvariant(iso)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with deny rules:    %s -> %v (engine=%s, slice=%d hosts + %d middleboxes)\n",
		iso.Label, reports[0].Result.Outcome, reports[0].Engine,
		reports[0].SliceHosts, reports[0].SliceBoxes)

	// The §5.1-style misconfiguration: the deny rules are deleted.
	firewall.ACL = nil
	reports, err = v.VerifyInvariant(iso)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without deny rules: %s -> %v\n", iso.Label, reports[0].Result.Outcome)
	fmt.Println("violating schedule found by the solver:")
	for _, e := range reports[0].Result.Trace {
		fmt.Printf("  %s\n", e)
	}
}
