// Cachefarm: the paper's §5.2 data-isolation scenario — a content cache
// shared by two client groups can leak one group's private data to the
// other if its ACLs are misconfigured, even though a firewall blocks the
// direct path. VMN finds the three-packet leak schedule.
package main

import (
	"fmt"
	"log"

	vmn "github.com/netverify/vmn"
)

func main() {
	client1 := vmn.MustParseAddr("10.0.0.1") // same group as the server
	client2 := vmn.MustParseAddr("10.0.1.1") // other group
	server := vmn.MustParseAddr("10.2.0.1")  // private data server

	topo := vmn.NewTopology()
	h1 := topo.AddHost("client1", client1)
	h2 := topo.AddHost("client2", client2)
	srv := topo.AddHost("server", server)
	swClients := topo.AddSwitch("swClients")
	swServer := topo.AddSwitch("swServer")
	cacheNode := topo.AddMiddlebox("cache", "cache")
	fwNode := topo.AddMiddlebox("fw", "firewall")
	topo.AddLink(h1, swClients)
	topo.AddLink(h2, swClients)
	topo.AddLink(cacheNode, swClients)
	topo.AddLink(swClients, fwNode)
	topo.AddLink(fwNode, swServer)
	topo.AddLink(swServer, srv)

	// Requests go client -> cache -> firewall -> server; responses return
	// through the cache (filling it).
	srvP := vmn.HostPrefix(server)
	fib := vmn.FIB{}
	fib.Add(swClients, vmn.FwdRule{Match: srvP, In: cacheNode, Out: fwNode, Priority: 30})
	fib.Add(swClients, vmn.FwdRule{Match: srvP, In: -1, Out: cacheNode, Priority: 10})
	fib.Add(swServer, vmn.FwdRule{Match: srvP, In: -1, Out: srv, Priority: 10})
	for _, c := range []struct {
		node vmn.NodeID
		addr vmn.Addr
	}{{h1, client1}, {h2, client2}} {
		p := vmn.HostPrefix(c.addr)
		fib.Add(swServer, vmn.FwdRule{Match: p, In: -1, Out: fwNode, Priority: 10})
		fib.Add(swClients, vmn.FwdRule{Match: p, In: fwNode, Out: cacheNode, Priority: 30})
		fib.Add(swClients, vmn.FwdRule{Match: p, In: cacheNode, Out: c.node, Priority: 25})
		fib.Add(swClients, vmn.FwdRule{Match: p, In: -1, Out: c.node, Priority: 5})
	}
	fib.Add(fwNode, vmn.FwdRule{Match: srvP, In: -1, Out: swServer, Priority: 10})
	fib.Add(fwNode, vmn.FwdRule{Match: vmn.Prefix{}, In: -1, Out: swClients, Priority: 5})

	// Firewall: client2 may not touch the server (both directions);
	// everything else allowed.
	firewall := &vmn.LearningFirewall{
		InstanceName: "fw",
		ACL: []vmn.ACLEntry{
			vmn.DenyEntry(vmn.HostPrefix(client2), srvP),
			vmn.DenyEntry(srvP, vmn.HostPrefix(client2)),
		},
		DefaultAllow: true,
	}
	// Cache: correctly configured, it refuses to serve client2 content
	// originating at the server.
	cache := vmn.NewContentCache("cache",
		vmn.DenyEntry(vmn.HostPrefix(client2), srvP))

	net := &vmn.Network{
		Topo: topo,
		Boxes: []vmn.MiddleboxInstance{
			{Node: cacheNode, Model: cache},
			{Node: fwNode, Model: firewall},
		},
		FIBFor: func(vmn.FailureScenario) vmn.FIB { return fib },
	}
	v, err := vmn.NewVerifier(net, vmn.Options{})
	if err != nil {
		log.Fatal(err)
	}

	di := vmn.DataIsolation{Dst: h2, Origin: server, Label: "client2 never sees server data"}
	reports, err := v.VerifyInvariant(di)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cache ACL in place:  %v\n", reports[0].Result.Outcome)

	// §5.2 misconfiguration: the cache ACL entry is deleted. The firewall
	// still blocks the direct path — but the cached copy does not cross
	// the firewall.
	cache.ACL = nil
	reports, err = v.VerifyInvariant(di)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cache ACL deleted:   %v\n", reports[0].Result.Outcome)
	fmt.Println("leak schedule (fetch by insider, cache fill, probe by outsider):")
	for _, e := range reports[0].Result.Trace {
		fmt.Printf("  %s\n", e)
	}
}
