// Benchmarks regenerating every figure of the paper's evaluation (§5) at
// laptop scale, plus ablations of VMN's design choices. Each benchmark
// measures one verification run of the corresponding experiment; the
// cmd/vmnbench tool prints the full series (sweeps and percentiles).
package vmn

import (
	"math/rand"
	"runtime"
	"testing"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/encode"
	"github.com/netverify/vmn/internal/explore"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/testnet"
	"github.com/netverify/vmn/internal/topo"
)

// --- Figure 2: single-invariant time in the datacenter scenarios ---

func benchDCInvariant(b *testing.B, prep func(seed int64) (*core.Verifier, inv.Invariant, bool)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		v, iv, wantSat := prep(int64(i))
		rs, err := v.VerifyInvariant(iv)
		if err != nil {
			b.Fatal(err)
		}
		if rs[0].Satisfied != wantSat {
			b.Fatalf("unexpected verdict: %v", rs[0].Result.Outcome)
		}
	}
}

func BenchmarkFig2RulesViolated(b *testing.B) {
	benchDCInvariant(b, func(seed int64) (*core.Verifier, inv.Invariant, bool) {
		d := bench.NewDatacenter(bench.DCConfig{Groups: 5, HostsPerGroup: 1})
		aff := d.DeleteRandomDenyRules(rand.New(rand.NewSource(seed)), 1)
		v, _ := core.NewVerifier(d.Net, core.Options{Engine: core.EngineSAT, Seed: seed})
		return v, d.IsolationInvariant(aff[0][0], aff[0][1]), false
	})
}

func BenchmarkFig2RulesHolds(b *testing.B) {
	benchDCInvariant(b, func(seed int64) (*core.Verifier, inv.Invariant, bool) {
		d := bench.NewDatacenter(bench.DCConfig{Groups: 5, HostsPerGroup: 1})
		v, _ := core.NewVerifier(d.Net, core.Options{Engine: core.EngineSAT, Seed: seed})
		return v, d.IsolationInvariant(0, 1), true
	})
}

func BenchmarkFig2RedundancyViolated(b *testing.B) {
	benchDCInvariant(b, func(seed int64) (*core.Verifier, inv.Invariant, bool) {
		d := bench.NewDatacenter(bench.DCConfig{Groups: 5, HostsPerGroup: 1})
		aff := d.DeleteBackupDenyRules(rand.New(rand.NewSource(seed)), 1)
		v, _ := core.NewVerifier(d.Net, core.Options{
			Engine: core.EngineSAT, Seed: seed,
			Scenarios: []topo.FailureScenario{topo.Failures(d.FW1)},
		})
		return v, d.IsolationInvariant(aff[0][0], aff[0][1]), false
	})
}

func BenchmarkFig2RedundancyHolds(b *testing.B) {
	benchDCInvariant(b, func(seed int64) (*core.Verifier, inv.Invariant, bool) {
		d := bench.NewDatacenter(bench.DCConfig{Groups: 5, HostsPerGroup: 1})
		v, _ := core.NewVerifier(d.Net, core.Options{
			Engine: core.EngineSAT, Seed: seed,
			Scenarios: []topo.FailureScenario{topo.Failures(d.FW1)},
		})
		return v, d.IsolationInvariant(0, 1), true
	})
}

func BenchmarkFig2TraversalViolated(b *testing.B) {
	benchDCInvariant(b, func(seed int64) (*core.Verifier, inv.Invariant, bool) {
		d := bench.NewDatacenter(bench.DCConfig{Groups: 5, HostsPerGroup: 1, OpenGroups: true})
		d.BypassIDSUnderFailure = true
		v, _ := core.NewVerifier(d.Net, core.Options{
			Engine: core.EngineSAT, Seed: seed,
			Scenarios: []topo.FailureScenario{topo.Failures(d.IDS1)},
		})
		return v, d.TraversalInvariant(0, 1), false
	})
}

func BenchmarkFig2TraversalHolds(b *testing.B) {
	benchDCInvariant(b, func(seed int64) (*core.Verifier, inv.Invariant, bool) {
		d := bench.NewDatacenter(bench.DCConfig{Groups: 5, HostsPerGroup: 1, OpenGroups: true})
		v, _ := core.NewVerifier(d.Net, core.Options{
			Engine: core.EngineSAT, Seed: seed,
			Scenarios: []topo.FailureScenario{topo.Failures(d.IDS1)},
		})
		return v, d.TraversalInvariant(0, 1), true
	})
}

// --- Figure 2, explicit-state engine: the perf target of the binary-
// fingerprint search. MaxSends is raised to 4 so the product space is
// large enough (715 states) to exercise the search loop; allocs/op and
// states explored per second are reported alongside wall clock. ---

func benchFig2Explicit(b *testing.B, workers int) {
	b.Helper()
	d := bench.NewDatacenter(bench.DCConfig{Groups: 5, HostsPerGroup: 1})
	v, _ := core.NewVerifier(d.Net, core.Options{
		Engine: core.EngineExplicit, MaxSends: 4, Workers: workers,
	})
	iv := d.IsolationInvariant(0, 1)
	b.ReportAllocs()
	states := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := v.VerifyInvariant(iv)
		if err != nil {
			b.Fatal(err)
		}
		if !rs[0].Satisfied {
			b.Fatalf("unexpected verdict: %v", rs[0].Result.Outcome)
		}
		states += rs[0].Result.StatesExplored
	}
	b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
}

func BenchmarkFig2ExplicitRulesHoldsW1(b *testing.B) { benchFig2Explicit(b, 1) }
func BenchmarkFig2ExplicitRulesHoldsWMax(b *testing.B) {
	benchFig2Explicit(b, runtime.GOMAXPROCS(0))
}

// --- Figure 3: all invariants vs policy classes ---

func benchFig3(b *testing.B, classes int) {
	for i := 0; i < b.N; i++ {
		d := bench.NewDatacenter(bench.DCConfig{Groups: classes, HostsPerGroup: 1})
		v, _ := core.NewVerifier(d.Net, core.Options{Engine: core.EngineSAT, Seed: int64(i)})
		var invs []inv.Invariant
		for g := 0; g < classes; g++ {
			invs = append(invs, d.IsolationInvariant(g, (g+1)%classes))
		}
		if _, err := v.VerifyAll(invs, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3Classes4(b *testing.B)  { benchFig3(b, 4) }
func BenchmarkFig3Classes8(b *testing.B)  { benchFig3(b, 8) }
func BenchmarkFig3Classes16(b *testing.B) { benchFig3(b, 16) }

// --- Figure 4: per-invariant data isolation vs policy classes ---

func benchFig4(b *testing.B, classes int) {
	for i := 0; i < b.N; i++ {
		d := bench.NewDatacenter(bench.DCConfig{Groups: classes, HostsPerGroup: 1, WithCaches: true})
		v, _ := core.NewVerifier(d.Net, core.Options{Engine: core.EngineSAT, Seed: int64(i)})
		rs, err := v.VerifyInvariant(d.DataIsolationInvariant(0))
		if err != nil {
			b.Fatal(err)
		}
		if !rs[0].Satisfied {
			b.Fatal("should hold")
		}
	}
}

func BenchmarkFig4Classes3(b *testing.B) { benchFig4(b, 3) }
func BenchmarkFig4Classes6(b *testing.B) { benchFig4(b, 6) }
func BenchmarkFig4Classes9(b *testing.B) { benchFig4(b, 9) }

// --- Figure 5: all data-isolation invariants vs policy classes ---

func benchFig5(b *testing.B, classes int) {
	for i := 0; i < b.N; i++ {
		d := bench.NewDatacenter(bench.DCConfig{Groups: classes, HostsPerGroup: 1, WithCaches: true})
		v, _ := core.NewVerifier(d.Net, core.Options{Engine: core.EngineSAT, Seed: int64(i)})
		var invs []inv.Invariant
		for g := 0; g < classes; g++ {
			invs = append(invs, d.DataIsolationInvariant(g))
		}
		if _, err := v.VerifyAll(invs, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Classes3(b *testing.B) { benchFig5(b, 3) }
func BenchmarkFig5Classes6(b *testing.B) { benchFig5(b, 6) }

// --- Figure 7: enterprise, slice vs whole network ---

func benchFig7(b *testing.B, subnets int, noSlices bool) {
	for i := 0; i < b.N; i++ {
		e := bench.NewEnterprise(bench.EnterpriseConfig{Subnets: subnets, HostsPerSubnet: 1})
		v, _ := core.NewVerifier(e.Net, core.Options{Engine: core.EngineSAT, Seed: int64(i), NoSlices: noSlices})
		if _, err := v.VerifyInvariant(e.Invariant(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Slice(b *testing.B)   { benchFig7(b, 9, false) }
func BenchmarkFig7Whole9(b *testing.B)  { benchFig7(b, 9, true) }
func BenchmarkFig7Whole15(b *testing.B) { benchFig7(b, 15, true) }
func BenchmarkFig7Whole24(b *testing.B) { benchFig7(b, 24, true) }

// --- Figure 8: multi-tenant, slice vs whole network ---

func benchFig8(b *testing.B, tenants int, noSlices bool) {
	for i := 0; i < b.N; i++ {
		m := bench.NewMultiTenant(bench.MTConfig{Tenants: tenants, PubPerTenant: 2, PrivPerTenant: 2})
		v, _ := core.NewVerifier(m.Net, core.Options{Engine: core.EngineSAT, Seed: int64(i), NoSlices: noSlices})
		if _, err := v.VerifyInvariant(m.PrivPrivInvariant(0, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Slice(b *testing.B)  { benchFig8(b, 4, false) }
func BenchmarkFig8Whole4(b *testing.B) { benchFig8(b, 4, true) }
func BenchmarkFig8Whole8(b *testing.B) { benchFig8(b, 8, true) }

// --- Figure 9b/9c: ISP, slice vs whole network ---

func benchISP(b *testing.B, peerings, subnets int, noSlices bool) {
	for i := 0; i < b.N; i++ {
		isp := bench.NewISP(bench.ISPConfig{Peerings: peerings, Subnets: subnets})
		v, _ := core.NewVerifier(isp.Net, core.Options{Engine: core.EngineSAT, Seed: int64(i), NoSlices: noSlices})
		if _, err := v.VerifyInvariant(isp.Invariant(1, 0)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9bSlice(b *testing.B)      { benchISP(b, 2, 6, false) }
func BenchmarkFig9bWhole6(b *testing.B)     { benchISP(b, 2, 6, true) }
func BenchmarkFig9bWhole12(b *testing.B)    { benchISP(b, 2, 12, true) }
func BenchmarkFig9cSlice(b *testing.B)      { benchISP(b, 2, 6, false) }
func BenchmarkFig9cWholePeer2(b *testing.B) { benchISP(b, 2, 6, true) }
func BenchmarkFig9cWholePeer4(b *testing.B) { benchISP(b, 4, 6, true) }

// --- Ablations (DESIGN.md) ---

// Slicing on vs off on the same instance isolates the §4.1 claim.
func BenchmarkAblationWithSlicing(b *testing.B)    { benchFig7(b, 15, false) }
func BenchmarkAblationWithoutSlicing(b *testing.B) { benchFig7(b, 15, true) }

// Symmetry on vs off isolates the §4.2 claim.
func benchSymmetry(b *testing.B, useSymmetry bool) {
	for i := 0; i < b.N; i++ {
		d := bench.NewDatacenter(bench.DCConfig{Groups: 8, HostsPerGroup: 1, PolicyTiers: 2})
		v, _ := core.NewVerifier(d.Net, core.Options{Engine: core.EngineSAT, Seed: int64(i)})
		if _, err := v.VerifyAll(d.AllIsolationInvariants(), useSymmetry); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWithSymmetry(b *testing.B)    { benchSymmetry(b, true) }
func BenchmarkAblationWithoutSymmetry(b *testing.B) { benchSymmetry(b, false) }

// SAT-based vs explicit-state engine on identical slices.
func BenchmarkAblationEngineSAT(b *testing.B) {
	f := testnet.NewFirewallPair(mbox.NewLearningFirewall("fw"))
	for i := 0; i < b.N; i++ {
		p := f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
		if _, err := encode.Verify(p, encode.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEngineExplicit(b *testing.B) {
	f := testnet.NewFirewallPair(mbox.NewLearningFirewall("fw"))
	for i := 0; i < b.N; i++ {
		p := f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
		if _, err := explore.Verify(p, explore.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
