// Command vmn verifies reachability invariants on the built-in evaluation
// networks or on a topology description file, printing per-invariant
// verdicts, slice sizes and — for violations — the offending event
// schedule.
//
// Usage:
//
//	vmn -network enterprise -subnets 6
//	vmn -network datacenter -groups 5 -break-rules 2
//	vmn -network datacenter -groups 5 -with-caches -break-cache
//	vmn -network multitenant -tenants 4
//	vmn -network isp -peerings 3 -subnets 6 -scrubber-bypass
//	vmn -topology examples/topologies/fattree-k4.json
//	vmn -topology bad.json -check
//	vmn -gen fattree -k 16 -out fattree-k16.json
//	vmn -gen vpc -tenants 10000 -shapes 8 -out vpc-10k.json
//
// -topology loads a vmn-topology/1 JSON description (see internal/netdesc
// and DESIGN.md) with its invariant set; -check stops after validation
// and build, printing a summary. Malformed files produce one structured
// file:line:field error and exit status 2. -gen writes a generated
// scenario (fattree | vpc | isp) in canonical form and exits.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/netdesc"
	"github.com/netverify/vmn/internal/topo"
)

func main() {
	var (
		network   = flag.String("network", "enterprise", "enterprise | datacenter | multitenant | isp")
		subnets   = flag.Int("subnets", 6, "subnets (enterprise, isp)")
		groups    = flag.Int("groups", 4, "policy groups (datacenter)")
		tenants   = flag.Int("tenants", 3, "tenants (multitenant)")
		peerings  = flag.Int("peerings", 2, "peering points (isp)")
		withCache = flag.Bool("with-caches", false, "add caches and data servers (datacenter)")
		breakN    = flag.Int("break-rules", 0, "delete N random firewall deny rules (datacenter)")
		breakCch  = flag.Bool("break-cache", false, "delete protective cache ACLs (datacenter)")
		bypass    = flag.Bool("scrubber-bypass", false, "scrubbed traffic skips firewalls (isp)")
		failures  = flag.Bool("failures", false, "also verify under single middlebox failures")
		noSlices  = flag.Bool("no-slices", false, "verify against the whole network")
		engine    = flag.String("engine", "auto", "auto | sat | explicit")
		seed      = flag.Int64("seed", 0, "solver seed")
		workers   = flag.Int("workers", 0, "explicit-engine search workers (0 = GOMAXPROCS)")

		topology = flag.String("topology", "", "verify a vmn-topology/1 description file instead of a built-in network")
		check    = flag.Bool("check", false, "with -topology: validate and build only, print a summary, skip verification")
		gen      = flag.String("gen", "", "emit a generated topology description and exit: fattree | vpc | isp")
		out      = flag.String("out", "", "output file for -gen (default stdout)")
		arity    = flag.Int("k", 4, "fat-tree pod arity (-gen fattree; even, 2..32)")
		hostsPE  = flag.Int("hosts-per-edge", 2, "hosts per edge switch (-gen fattree)")
		shapes   = flag.Int("shapes", 4, "distinct tenant security-group shapes (-gen vpc)")
		crossChk = flag.Int("cross-checks", 8, "extra cross-tenant isolation invariants (-gen vpc)")
	)
	flag.Parse()

	if *gen != "" {
		emitTopology(*gen, *out, genParams{
			k: *arity, hostsPerEdge: *hostsPE,
			tenants: *tenants, shapes: *shapes, peerings: *peerings,
			crossChecks: *crossChk, subnets: *subnets,
		})
		return
	}

	opts := core.Options{Seed: *seed, NoSlices: *noSlices, Workers: *workers}
	switch *engine {
	case "sat":
		opts.Engine = core.EngineSAT
	case "explicit":
		opts.Engine = core.EngineExplicit
	case "auto":
	default:
		fail("unknown engine %q", *engine)
	}

	var (
		net  *core.Network
		invs []inv.Invariant
		mbs  []topo.NodeID
	)
	if *topology != "" {
		d, n, iv, err := netdesc.BuildFile(*topology)
		if err != nil {
			fail("%v", err)
		}
		net, invs = n, iv
		// -failures on a file topology fails over every middlebox.
		for _, nd := range n.Topo.Nodes() {
			if nd.Kind == topo.Middlebox {
				mbs = append(mbs, nd.ID)
			}
		}
		hosts, switches, externals := 0, 0, 0
		links := 0
		for _, nd := range n.Topo.Nodes() {
			switch nd.Kind {
			case topo.Host:
				hosts++
			case topo.Switch:
				switches++
			case topo.External:
				externals++
			}
			links += len(n.Topo.Neighbors(nd.ID))
		}
		fmt.Printf("%s: %s — %d hosts, %d switches, %d middleboxes, %d externals, %d links, %d invariants, %d packet classes\n",
			*topology, d.Name, hosts, switches, len(mbs), externals, links/2, len(invs), len(d.Classes))
		if *check {
			return
		}
	} else {
		buildBuiltin(*network, builtinParams{
			subnets: *subnets, groups: *groups, tenants: *tenants, peerings: *peerings,
			withCache: *withCache, breakN: *breakN, breakCch: *breakCch, bypass: *bypass,
			seed: *seed,
		}, &net, &invs, &mbs)
	}

	if *failures {
		opts.Scenarios = topo.SingleFailures(mbs)
	}

	v, err := core.NewVerifier(net, opts)
	if err != nil {
		fail("%v", err)
	}
	reports, err := v.VerifyAll(invs, true)
	if err != nil {
		fail("%v", err)
	}

	fmt.Printf("%-34s %-12s %-10s %-9s %-7s %s\n", "invariant", "scenario", "outcome", "satisfied", "engine", "slice")
	bad := 0
	for _, r := range reports {
		scen := "fault-free"
		if r.Scenario.Count() > 0 {
			scen = fmt.Sprintf("fail(%v)", r.Scenario.Nodes())
		}
		mark := "yes"
		if !r.Satisfied {
			mark = "NO"
			bad++
		}
		slice := fmt.Sprintf("%dh+%dmb", r.SliceHosts, r.SliceBoxes)
		if r.Whole {
			slice = "whole"
		}
		reused := ""
		if r.Reused {
			reused = " (by symmetry)"
		}
		fmt.Printf("%-34s %-12s %-10s %-9s %-7s %s%s\n",
			r.Invariant.Name(), scen, r.Result.Outcome, mark, r.Engine, slice, reused)
		if !r.Satisfied && len(r.Result.Trace) > 0 {
			fmt.Println("  violating schedule:")
			for _, e := range r.Result.Trace {
				fmt.Printf("    %s\n", e)
			}
		}
	}
	fmt.Printf("\n%d/%d invariant checks satisfied\n", len(reports)-bad, len(reports))
	if bad > 0 {
		os.Exit(1)
	}
}

// builtinParams sizes a built-in evaluation network (and its optional
// injected misconfigurations).
type builtinParams struct {
	subnets, groups, tenants, peerings int
	withCache, breakCch, bypass        bool
	breakN                             int
	seed                               int64
}

func buildBuiltin(network string, p builtinParams, net **core.Network, invs *[]inv.Invariant, mbs *[]topo.NodeID) {
	switch network {
	case "enterprise":
		e := bench.NewEnterprise(bench.EnterpriseConfig{Subnets: p.subnets, HostsPerSubnet: 1})
		*net = e.Net
		*invs = e.AllInvariants()
		*mbs = []topo.NodeID{e.FWNode}
	case "datacenter":
		d := bench.NewDatacenter(bench.DCConfig{Groups: p.groups, HostsPerGroup: 1, WithCaches: p.withCache})
		if p.breakN > 0 {
			aff := d.DeleteRandomDenyRules(rand.New(rand.NewSource(p.seed)), p.breakN)
			fmt.Printf("injected misconfiguration: deleted deny rules for group pairs %v\n\n", aff)
		}
		if p.breakCch && p.withCache {
			d.DeleteCacheACLs(0, 0)
			fmt.Println("injected misconfiguration: cache 0 may now serve group 0's private data to anyone")
		}
		*net = d.Net
		for a := 0; a < p.groups && a < 4; a++ {
			for b := 0; b < p.groups && b < 4; b++ {
				if a != b {
					*invs = append(*invs, d.IsolationInvariant(a, b))
				}
			}
		}
		if p.withCache {
			for g := 0; g < p.groups && g < 4; g++ {
				*invs = append(*invs, d.DataIsolationInvariant(g))
			}
		}
		*mbs = []topo.NodeID{d.FW1, d.IDS1}
	case "multitenant":
		m := bench.NewMultiTenant(bench.MTConfig{Tenants: p.tenants, PubPerTenant: 2, PrivPerTenant: 2})
		*net = m.Net
		for a := 0; a < p.tenants && a < 3; a++ {
			for b := 0; b < p.tenants && b < 3; b++ {
				if a != b {
					*invs = append(*invs,
						m.PrivPrivInvariant(a, b), m.PubPrivInvariant(a, b), m.PrivPubInvariant(a, b))
				}
			}
		}
		*mbs = m.VSwitchFW
	case "isp":
		i := bench.NewISP(bench.ISPConfig{Peerings: p.peerings, Subnets: p.subnets, ScrubberBypassesFW: p.bypass})
		*net = i.Net
		for s := 0; s < p.subnets && s < 6; s++ {
			*invs = append(*invs, i.Invariant(s, 0))
		}
		*mbs = i.IDSNodes
	default:
		fail("unknown network %q", network)
	}
}

// genParams sizes a generated topology description.
type genParams struct {
	k, hostsPerEdge           int
	tenants, shapes, peerings int
	crossChecks, subnets      int
}

// emitTopology writes a generated scenario in canonical form to out
// ("" or "-" for stdout) and exits via fail on any error.
func emitTopology(kind, out string, p genParams) {
	var d *netdesc.Desc
	switch kind {
	case "fattree":
		d = netdesc.FatTree(p.k, p.hostsPerEdge)
	case "vpc":
		d = netdesc.CloudVPC(netdesc.VPCConfig{
			Tenants: p.tenants, Shapes: p.shapes,
			Peerings: p.peerings, CrossChecks: p.crossChecks,
		})
	case "isp":
		d = netdesc.ISPBackbone(netdesc.ISPBackboneConfig{Peerings: p.peerings, Subnets: p.subnets})
	default:
		fail("unknown generator %q (want fattree, vpc or isp)", kind)
	}
	if out == "" || out == "-" {
		data, err := netdesc.Encode(d)
		if err != nil {
			fail("%v", err)
		}
		os.Stdout.Write(data)
		return
	}
	if err := netdesc.Save(d, out); err != nil {
		fail("%v", err)
	}
	fmt.Fprintf(os.Stderr, "vmn: wrote %s (%s)\n", out, d.Name)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vmn: "+format+"\n", args...)
	os.Exit(2)
}
