// Command vmn verifies reachability invariants on the built-in evaluation
// networks, printing per-invariant verdicts, slice sizes and — for
// violations — the offending event schedule.
//
// Usage:
//
//	vmn -network enterprise -subnets 6
//	vmn -network datacenter -groups 5 -break-rules 2
//	vmn -network datacenter -groups 5 -with-caches -break-cache
//	vmn -network multitenant -tenants 4
//	vmn -network isp -peerings 3 -subnets 6 -scrubber-bypass
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/topo"
)

func main() {
	var (
		network   = flag.String("network", "enterprise", "enterprise | datacenter | multitenant | isp")
		subnets   = flag.Int("subnets", 6, "subnets (enterprise, isp)")
		groups    = flag.Int("groups", 4, "policy groups (datacenter)")
		tenants   = flag.Int("tenants", 3, "tenants (multitenant)")
		peerings  = flag.Int("peerings", 2, "peering points (isp)")
		withCache = flag.Bool("with-caches", false, "add caches and data servers (datacenter)")
		breakN    = flag.Int("break-rules", 0, "delete N random firewall deny rules (datacenter)")
		breakCch  = flag.Bool("break-cache", false, "delete protective cache ACLs (datacenter)")
		bypass    = flag.Bool("scrubber-bypass", false, "scrubbed traffic skips firewalls (isp)")
		failures  = flag.Bool("failures", false, "also verify under single middlebox failures")
		noSlices  = flag.Bool("no-slices", false, "verify against the whole network")
		engine    = flag.String("engine", "auto", "auto | sat | explicit")
		seed      = flag.Int64("seed", 0, "solver seed")
		workers   = flag.Int("workers", 0, "explicit-engine search workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	opts := core.Options{Seed: *seed, NoSlices: *noSlices, Workers: *workers}
	switch *engine {
	case "sat":
		opts.Engine = core.EngineSAT
	case "explicit":
		opts.Engine = core.EngineExplicit
	case "auto":
	default:
		fail("unknown engine %q", *engine)
	}

	var (
		net  *core.Network
		invs []inv.Invariant
		mbs  []topo.NodeID
	)
	switch *network {
	case "enterprise":
		e := bench.NewEnterprise(bench.EnterpriseConfig{Subnets: *subnets, HostsPerSubnet: 1})
		net = e.Net
		invs = e.AllInvariants()
		mbs = []topo.NodeID{e.FWNode}
	case "datacenter":
		d := bench.NewDatacenter(bench.DCConfig{Groups: *groups, HostsPerGroup: 1, WithCaches: *withCache})
		if *breakN > 0 {
			aff := d.DeleteRandomDenyRules(rand.New(rand.NewSource(*seed)), *breakN)
			fmt.Printf("injected misconfiguration: deleted deny rules for group pairs %v\n\n", aff)
		}
		if *breakCch && *withCache {
			d.DeleteCacheACLs(0, 0)
			fmt.Println("injected misconfiguration: cache 0 may now serve group 0's private data to anyone")
		}
		net = d.Net
		for a := 0; a < *groups && a < 4; a++ {
			for b := 0; b < *groups && b < 4; b++ {
				if a != b {
					invs = append(invs, d.IsolationInvariant(a, b))
				}
			}
		}
		if *withCache {
			for g := 0; g < *groups && g < 4; g++ {
				invs = append(invs, d.DataIsolationInvariant(g))
			}
		}
		mbs = []topo.NodeID{d.FW1, d.IDS1}
	case "multitenant":
		m := bench.NewMultiTenant(bench.MTConfig{Tenants: *tenants, PubPerTenant: 2, PrivPerTenant: 2})
		net = m.Net
		for a := 0; a < *tenants && a < 3; a++ {
			for b := 0; b < *tenants && b < 3; b++ {
				if a != b {
					invs = append(invs,
						m.PrivPrivInvariant(a, b), m.PubPrivInvariant(a, b), m.PrivPubInvariant(a, b))
				}
			}
		}
		mbs = m.VSwitchFW
	case "isp":
		i := bench.NewISP(bench.ISPConfig{Peerings: *peerings, Subnets: *subnets, ScrubberBypassesFW: *bypass})
		net = i.Net
		for s := 0; s < *subnets && s < 6; s++ {
			invs = append(invs, i.Invariant(s, 0))
		}
		mbs = i.IDSNodes
	default:
		fail("unknown network %q", *network)
	}

	if *failures {
		opts.Scenarios = topo.SingleFailures(mbs)
	}

	v, err := core.NewVerifier(net, opts)
	if err != nil {
		fail("%v", err)
	}
	reports, err := v.VerifyAll(invs, true)
	if err != nil {
		fail("%v", err)
	}

	fmt.Printf("%-34s %-12s %-10s %-9s %-7s %s\n", "invariant", "scenario", "outcome", "satisfied", "engine", "slice")
	bad := 0
	for _, r := range reports {
		scen := "fault-free"
		if r.Scenario.Count() > 0 {
			scen = fmt.Sprintf("fail(%v)", r.Scenario.Nodes())
		}
		mark := "yes"
		if !r.Satisfied {
			mark = "NO"
			bad++
		}
		slice := fmt.Sprintf("%dh+%dmb", r.SliceHosts, r.SliceBoxes)
		if r.Whole {
			slice = "whole"
		}
		reused := ""
		if r.Reused {
			reused = " (by symmetry)"
		}
		fmt.Printf("%-34s %-12s %-10s %-9s %-7s %s%s\n",
			r.Invariant.Name(), scen, r.Result.Outcome, mark, r.Engine, slice, reused)
		if !r.Satisfied && len(r.Result.Trace) > 0 {
			fmt.Println("  violating schedule:")
			for _, e := range r.Result.Trace {
				fmt.Printf("    %s\n", e)
			}
		}
	}
	fmt.Printf("\n%d/%d invariant checks satisfied\n", len(reports)-bad, len(reports))
	if bad > 0 {
		os.Exit(1)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vmn: "+format+"\n", args...)
	os.Exit(2)
}
