package main

// File-driven scenario figures: the topology-frontend counterpart of the
// built-in sweeps. Each data point round-trips through disk — the
// generator writes a canonical vmn-topology/1 description, the timed run
// loads it back with netdesc.BuildFile and verifies the embedded
// invariant set — so the numbers cover the whole production path a real
// deployment takes, not just the in-memory verifier.
//
// The vpc figure is the scaling claim of the cloud-VPC scenario made
// measurable: tenants of the same security-group shape are isomorphic up
// to addressing, so canonical normalization folds their checks into one
// solve per shape. Sweeping tenants at fixed shapes the class count stays
// flat (solver work is constant; wall clock grows only with the linear
// per-invariant slicing/translation pass), while sweeping shapes at fixed
// tenants the class count — and with it the solve cost — tracks shapes.

import (
	"fmt"
	"os"
	"time"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/netdesc"
)

// writeScenario saves d in canonical form under dir.
func writeScenario(dir string, d *netdesc.Desc) string {
	path := dir + "/" + d.Name + ".json"
	if err := netdesc.Save(d, path); err != nil {
		panic(err)
	}
	return path
}

// timedLoadVerify loads a description from disk, builds it, and verifies
// its embedded invariant set with symmetry on, asserting every invariant
// holds (the generated scenarios are all-green by construction). It
// returns the load and verify wall clocks plus the canonicalization
// counters that carry the scaling claim.
func timedLoadVerify(path string, seed int64) (load, verify time.Duration, invariants int, classes, shared, encBuilds int64) {
	start := time.Now()
	_, net, invs, err := netdesc.BuildFile(path)
	if err != nil {
		panic(err)
	}
	load = time.Since(start)
	// Auto engine: the VPC's NAT keeps non-boolean state the SAT encoding
	// cannot express, so its groups fall back to the explicit engine.
	v, err := core.NewVerifier(net, core.Options{Seed: seed})
	if err != nil {
		panic(err)
	}
	start = time.Now()
	reports, err := v.VerifyAll(invs, true)
	if err != nil {
		panic(err)
	}
	verify = time.Since(start)
	for _, r := range reports {
		if !r.Satisfied {
			panic(fmt.Sprintf("vmnbench: generated scenario %s violates %s (%v)",
				path, r.Invariant.Name(), r.Result.Outcome))
		}
	}
	classes, shared, _ = v.CanonStats()
	_, encBuilds = v.EncodingCacheStats()
	return load, verify, len(invs), classes, shared, encBuilds
}

// scenarioRows measures one on-disk scenario: a load row and a verify row
// (Classes/Shared/Solves totalled across runs, matching FigCanon's
// accounting, so the table derives the reuse rate).
func scenarioRows(path, label string, x, runs int) (loadRow, verifyRow bench.Row) {
	loadRow = bench.Row{Label: label + "/load", X: x}
	verifyRow = bench.Row{Label: label + "/verify", X: x}
	for r := 0; r < runs; r++ {
		load, verify, ninv, classes, shared, encBuilds := timedLoadVerify(path, int64(r))
		loadRow.Samples = append(loadRow.Samples, load)
		verifyRow.Samples = append(verifyRow.Samples, verify)
		verifyRow.Invariants = ninv
		verifyRow.Classes += int(classes)
		verifyRow.Shared += int(shared)
		verifyRow.Solves += int(encBuilds)
	}
	return loadRow, verifyRow
}

// figFatTree sweeps fat-tree pod arity: every (k/2)^2-core topology is
// generated to disk at full fidelity and loaded back for verification.
func figFatTree(ks []int, hostsPerEdge, runs int) bench.Series {
	s := bench.Series{Fig: "fattree", Title: "fat-tree from file: load + verify vs pod arity k"}
	dir, err := os.MkdirTemp("", "vmnbench-fattree")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	for _, k := range ks {
		path := writeScenario(dir, netdesc.FatTree(k, hostsPerEdge))
		loadRow, verifyRow := scenarioRows(path, "fattree", k, runs)
		s.Rows = append(s.Rows, loadRow, verifyRow)
	}
	return s
}

// figVPC sweeps the cloud-VPC scenario two ways: tenant count at fixed
// shapes (classes stay flat — cost is per-shape, not per-tenant), and
// shape count at fixed tenants (classes track shapes).
func figVPC(tenantCounts []int, shapes int, shapeCounts []int, runs int) bench.Series {
	s := bench.Series{
		Fig: "vpc",
		Title: fmt.Sprintf(
			"cloud VPC from file: tenants sweep @%d shapes (classes flat) vs shapes sweep @%d tenants (classes grow)",
			shapes, tenantCounts[0]),
	}
	dir, err := os.MkdirTemp("", "vmnbench-vpc")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	for _, n := range tenantCounts {
		path := writeScenario(dir, netdesc.CloudVPC(netdesc.VPCConfig{
			Tenants: n, Shapes: shapes, Peerings: 2, CrossChecks: 8,
		}))
		loadRow, verifyRow := scenarioRows(path, "tenants", n, runs)
		s.Rows = append(s.Rows, loadRow, verifyRow)
	}
	for _, sh := range shapeCounts {
		if sh == shapes {
			continue // already measured in the tenants sweep
		}
		path := writeScenario(dir, netdesc.CloudVPC(netdesc.VPCConfig{
			Tenants: tenantCounts[0], Shapes: sh, Peerings: 2, CrossChecks: 8,
		}))
		_, verifyRow := scenarioRows(path, "shapes", sh, runs)
		s.Rows = append(s.Rows, verifyRow)
	}
	return s
}
