// Command vmnbench regenerates the paper's evaluation figures (§5) as
// text tables: per-row min/p5/median/p95/max over repeated runs, the same
// statistics the paper's box-and-whisker plots report. The extra
// "explicit" figure sweeps the explicit-state engine's search workers.
//
// Usage:
//
//	vmnbench -fig all -runs 5
//	vmnbench -fig 7 -runs 20
//	vmnbench -fig 2,explicit -runs 10 -json > bench.json
//
// With -json the series are emitted as a single JSON array (duration
// samples in nanoseconds, plus the explored-state count for explicit-
// engine rows), for machine-readable benchmark trajectory tracking.
// With -obs the incremental-session figures (churn, guardrail) run with
// the observability registry attached and each series carries a flat
// metrics snapshot (solve-latency histogram, dirty-fraction
// distribution, hit-rate counters) in its Metrics field.
//
// The fattree and vpc figures are file-driven: each data point generates
// a vmn-topology/1 description to disk and measures netdesc.BuildFile +
// VerifyAll on it (see topofig.go). -scale multiplies the vpc tenant
// sweep; -fig vpc -scale 10 -runs 1 reaches 10k+ tenants.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2,3,4,5,7,8,9b,9c,explicit,satincr,canon,churn,guardrail,stream,restart,fattree,vpc or all")
	runs := flag.Int("runs", 5, "repetitions per data point (paper uses 100)")
	scale := flag.Int("scale", 1, "size multiplier for the sweeps (1 = quick laptop scale)")
	asJSON := flag.Bool("json", false, "emit the series as JSON instead of text tables")
	withObs := flag.Bool("obs", false, "attach the metrics registry to incremental sessions and emit a per-figure snapshot")
	flag.Parse()

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	sc := *scale
	if sc < 1 {
		sc = 1
	}
	mul := func(xs ...int) []int {
		out := make([]int, len(xs))
		for i, x := range xs {
			out[i] = x * sc
		}
		return out
	}

	ran := false
	var series []bench.Series
	run := func(name string, f func() bench.Series) {
		if !all && !want[name] {
			return
		}
		ran = true
		if *withObs {
			// A fresh registry per figure: snapshots don't bleed across
			// figures. The trace ring is present but never drained — the
			// artifact of interest here is the metrics map.
			bench.Instrument = obs.New(1024)
		}
		s := f()
		if *withObs {
			// Merge, don't assign: figures like stream pre-populate
			// Metrics with derived throughput keys of their own.
			snap := bench.Instrument.Metrics.Snapshot()
			if s.Metrics == nil {
				s.Metrics = snap
			} else {
				for k, v := range snap {
					s.Metrics[k] = v
				}
			}
			bench.Instrument = nil
		}
		if *asJSON {
			series = append(series, s)
		} else {
			s.Print(os.Stdout)
		}
	}

	run("2", func() bench.Series { return bench.Fig2(5*sc, *runs) })
	run("3", func() bench.Series { return bench.Fig3(mul(4, 8, 12, 16), *runs) })
	run("4", func() bench.Series { return bench.Fig4(mul(3, 5, 7, 9), *runs) })
	run("5", func() bench.Series { return bench.Fig5(mul(3, 5, 7), *runs) })
	run("7", func() bench.Series { return bench.Fig7(mul(3, 9, 15, 24), *runs) })
	run("8", func() bench.Series { return bench.Fig8(mul(2, 4, 6, 8), *runs) })
	run("9b", func() bench.Series { return bench.Fig9b(2, mul(3, 6, 12, 18), *runs) })
	run("9c", func() bench.Series { return bench.Fig9c(6, mul(1, 2, 4, 6), *runs) })
	run("explicit", func() bench.Series { return bench.FigExplicit([]int{1, 2, 4, 8}, *runs) })
	run("satincr", func() bench.Series { return bench.FigSATIncr(*runs) })
	run("canon", func() bench.Series { return bench.FigCanon(*runs) })
	run("churn", func() bench.Series { return bench.Churn(8*sc, *runs) })
	run("guardrail", func() bench.Series { return bench.Guardrail(4*sc, *runs) })
	run("stream", func() bench.Series { return bench.Stream(1000*sc, *runs) })
	run("restart", func() bench.Series { return bench.Restart(8*sc, *runs) })
	run("fattree", func() bench.Series { return figFatTree([]int{4, 8, 16}, 2, *runs) })
	run("vpc", func() bench.Series { return figVPC(mul(64, 256, 1024), 8, []int{2, 4, 16, 32}, *runs) })

	if !ran {
		fmt.Fprintf(os.Stderr, "vmnbench: unknown figure %q (want 2,3,4,5,7,8,9b,9c,explicit,satincr,canon,churn,guardrail,stream,restart,fattree,vpc or all)\n", *fig)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(series); err != nil {
			fmt.Fprintf(os.Stderr, "vmnbench: %v\n", err)
			os.Exit(1)
		}
	}
}
