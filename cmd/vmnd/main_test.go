package main

// Golden-file tests for the NDJSON wire protocol: every supported op (and
// the malformed-input error paths) gets one recorded exchange — the
// initial verification result line plus one result/error line per input
// line — so any change to the wire format shows up as a reviewable diff.
// Regenerate with:
//
//	go test ./cmd/vmnd -run TestGolden -update
//
// Durations are nondeterministic and normalized to 0 before comparison
// (and in the recorded files).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/netdesc"
	"github.com/netverify/vmn/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

var (
	durationRe = regexp.MustCompile(`"duration_ns":\d+`)
	startRe    = regexp.MustCompile(`"start_ns":\d+`)
	// Any JSON field whose key mentions seconds or _ns carries wall-clock
	// data (span timestamps, latency-histogram buckets and sums, busy-time
	// counters) and is zeroed; counts and verdicts stay exact.
	timingRe = regexp.MustCompile(`"([^"]*(?:seconds|_ns)[^"]*)":[-+0-9.eE]+`)
	// The state directory is a per-run temp path.
	stateDirRe = regexp.MustCompile(`"dir":"[^"]*"`)
)

func normalize(b []byte) []byte {
	b = durationRe.ReplaceAll(b, []byte(`"duration_ns":0`))
	b = startRe.ReplaceAll(b, []byte(`"start_ns":0`))
	b = stateDirRe.ReplaceAll(b, []byte(`"dir":"STATEDIR"`))
	return timingRe.ReplaceAll(b, []byte(`"$1":0`))
}

// exchange builds a fresh session over the small datacenter and drives the
// wire loop with the given input lines.
func exchange(t *testing.T, lines []string) []byte {
	t.Helper()
	return exchangeOpts(t, lines, incr.Options{Workers: 1}, false)
}

// exchangeOpts is exchange with explicit session options and optional
// fault injection (the inject_panic op).
func exchangeOpts(t *testing.T, lines []string, sopts incr.Options, faultInj bool) []byte {
	t.Helper()
	net, invs, err := buildNetwork(netConfig{network: "datacenter", groups: 3})
	if err != nil {
		t.Fatal(err)
	}
	var hooks serveHooks
	if faultInj {
		hooks = wireFaultInjection(&sopts)
	}
	sess, reports, err := incr.NewSession(net, core.Options{Engine: core.EngineSAT}, invs, sopts)
	if err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader(strings.Join(lines, "\n") + "\n")
	var out bytes.Buffer
	if err := serve(sess, net, reports, in, &out, hooks, nil); err != nil {
		t.Fatal(err)
	}
	return normalize(out.Bytes())
}

func TestGoldenWireProtocol(t *testing.T) {
	cases := []struct {
		name  string
		lines []string
	}{
		{"node_down", []string{`{"op":"node_down","node":"fw1"}`}},
		{"node_up", []string{
			`{"op":"node_down","node":"h2-0"}`,
			`{"op":"node_up","node":"h2-0"}`,
		}},
		{"relabel", []string{`{"op":"relabel","node":"h0-0","class":"broken-0"}`}},
		{"fw_allow", []string{`{"op":"fw_allow","node":"fw1","src":"10.0.0.0/24","dst":"10.1.0.0/24"}`}},
		{"fw_deny", []string{`{"op":"fw_deny","node":"fw1","src":"10.2.0.0/24","dst":"*"}`}},
		{"fw_del", []string{`{"op":"fw_del","node":"fw1","src":"10.0.0.0/24","dst":"10.1.0.0/24"}`}},
		{"box_reconfig", []string{`{"op":"box_reconfig","node":"fw2"}`}},
		{"box_remove", []string{`{"op":"box_remove","node":"ids2"}`}},
		{"inv_add", []string{
			`{"op":"inv_add","invariant":{"type":"reachability","dst":"h1-0","src_addr":"10.0.0.1","label":"leak?"}}`,
		}},
		{"inv_remove", []string{
			`{"op":"inv_add","invariant":{"type":"simple_isolation","dst":"h2-0","src_addr":"10.0.0.1","label":"extra"}}`,
			`{"op":"inv_remove","name":"extra"}`,
		}},
		{"noop", []string{`{"op":"noop"}`}},
		{"change_set", []string{
			`[{"op":"fw_del","node":"fw2","src":"10.0.0.0/24","dst":"10.1.0.0/24"},` +
				`{"op":"relabel","node":"h0-0","class":"broken-0"},` +
				`{"op":"relabel","node":"h1-0","class":"broken-1"}]`,
		}},
		{"malformed", []string{
			`not json at all`,
			`{"op":"frobnicate"}`,
			`{"op":"node_down","node":"nope"}`,
			`{"op":"fw_deny","node":"ids1","src":"10.0.0.0/24","dst":"*"}`,
			`{"op":"fw_deny","node":"fw1","src":"999.0.0.0/24","dst":"*"}`,
			`{"op":"inv_add","invariant":{"type":"weird","dst":"h0-0"}}`,
			`{"op":"noop"}`,
		}},
		// A batch where coalescing is visible on the wire: two relabels of
		// one host keep only the last writer and a down-then-up pair
		// collapses to the (no-op) up, so 4 enqueued changes apply as 2 and
		// the result reports enqueued/coalesced.
		{"apply_batch", []string{
			`{"op":"apply_batch","id":"b1","changes":[` +
				`{"op":"relabel","node":"h0-0","class":"x"},` +
				`{"op":"relabel","node":"h0-0","class":"broken-0"},` +
				`{"op":"node_down","node":"h2-0"},` +
				`{"op":"node_up","node":"h2-0"}]}`,
		}},
		// An add-then-delete pair of one firewall entry nets out to the
		// original ACL; the two reconfig announcements coalesce to one and
		// the rule-read projections are unchanged — nothing dirtied.
		{"apply_batch_annihilate", []string{
			`{"op":"apply_batch","id":"b1","changes":[` +
				`{"op":"fw_deny","node":"fw1","src":"10.9.0.0/24","dst":"*"},` +
				`{"op":"fw_del","node":"fw1","src":"10.9.0.0/24","dst":"*"}]}`,
		}},
		// apply_batch refuses while a propose is pending (before decoding —
		// firewall ops mutate at decode time) and works after rollback.
		{"apply_batch_pending", []string{
			`{"op":"propose","id":"p1","changes":[{"op":"node_down","node":"h2-0"}]}`,
			`{"op":"apply_batch","id":"b1","changes":[{"op":"node_down","node":"fw1"}]}`,
			`{"op":"rollback","id":"p2"}`,
			`{"op":"apply_batch","id":"b2","changes":[{"op":"node_down","node":"fw1"}]}`,
		}},
		// Malformed batches: an invalid change anywhere rejects the whole
		// batch before any mutation runs; the trailing noop pins that the
		// session is untouched.
		{"apply_batch_malformed", []string{
			`{"op":"apply_batch","id":"m1","changes":[` +
				`{"op":"fw_deny","node":"fw1","src":"10.9.0.0/24","dst":"*"},` +
				`{"op":"node_down","node":"nope"}]}`,
			`{"op":"apply_batch","id":"m2","changes":[{"op":"frobnicate"}]}`,
			`{"op":"noop"}`,
		}},
		// A benign propose accepted and committed; the trailing noop pins
		// that the committed state (seq, verdicts) is the shadow's.
		{"propose_commit", []string{
			`{"op":"propose","id":"p1","changes":[{"op":"node_down","node":"fw1"}]}`,
			`{"op":"commit","id":"p2"}`,
			`{"op":"noop"}`,
		}},
		// A violating propose rejected with a verified repair suggestion,
		// rolled back; the trailing noop pins that the session is exactly
		// pre-propose (seq 2, verdicts unchanged).
		{"propose_reject", []string{
			`{"op":"propose","id":"r1","changes":[` +
				`{"op":"fw_del","node":"fw1","src":"10.0.0.0/24","dst":"10.1.0.0/24"},` +
				`{"op":"node_down","node":"h2-0"}]}`,
			`{"op":"rollback","id":"r2"}`,
			`{"op":"noop"}`,
		}},
		// A propose whose shadow run benefits from prefix/rule-level
		// dirtying: the response surfaces refined_clean — the number of
		// groups the refined index kept clean where node-granularity
		// dirtying would have re-verified them — so a deployment pipeline
		// can see the blast-radius estimate for the proposed change.
		{"propose_refined", []string{
			`{"op":"propose","id":"rc1","changes":[{"op":"fw_del","node":"fw1","src":"10.0.0.0/24","dst":"10.1.0.0/24"}]}`,
			`{"op":"rollback","id":"rc2"}`,
		}},
		// Out-of-order transaction sequences: every ordering violation is
		// a typed error and the session keeps serving.
		{"tx_ordering", []string{
			`{"op":"commit","id":"o1"}`,
			`{"op":"rollback","id":"o2"}`,
			`{"op":"propose","id":"o3","changes":[{"op":"node_down","node":"h2-0"}]}`,
			`{"op":"propose","id":"o4","changes":[{"op":"noop"}]}`,
			`{"op":"node_up","node":"h2-0"}`,
			`{"op":"rollback","id":"o5"}`,
			`{"op":"noop"}`,
		}},
		// Malformed propose bodies: bad JSON shapes, unknown nodes, and
		// in-place reconfiguration (not shadowable) are all rejected
		// without touching the session.
		{"propose_malformed", []string{
			`{"op":"propose","id":"m1","changes":"not an array"}`,
			`{"op":"propose","id":"m2","changes":[{"op":"box_reconfig","node":"fw2"}]}`,
			`{"op":"propose","id":"m3","changes":[{"op":"fw_del","node":"nope","src":"10.0.0.0/24","dst":"*"}]}`,
			`{"op":"propose","id":"m4","changes":[{"op":"frobnicate"}]}`,
			`{"op":"inject_panic","id":"m5"}`,
			`{"op":"noop"}`,
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := exchange(t, c.lines)
			path := filepath.Join("testdata", "golden", c.name+".ndjson")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire exchange diverged from golden %s\n--- got ---\n%s\n--- want ---\n%s",
					path, got, want)
			}
		})
	}
}

// TestGoldenObservability pins the introspection wire shapes: stats
// (lifetime totals + canonicalization + solver work + metrics snapshot),
// trace (drained span tree of the preceding applies), and explain
// (dirtying provenance down to the witness read atom, plus how each
// re-verified verdict was obtained). Sessions run with observability on
// and Workers:1, which makes span ids, orders, and all counters
// deterministic; wall-clock fields are normalized to 0.
func TestGoldenObservability(t *testing.T) {
	cases := []struct {
		name  string
		lines []string
	}{
		// A liveness change dirties via the coarse node channel: explain
		// names the node and the change that took it down.
		{"obs_explain_node", []string{
			`{"op":"node_down","node":"fw1"}`,
			`{"op":"explain","id":"e1"}`,
		}},
		// A firewall rule deletion dirties via the box rule-read projection
		// channel: explain names the reconfigured box, and only the groups
		// whose projection actually changed re-verify (fresh solves here —
		// the others stay refined-clean and have no record).
		{"obs_explain_fwdel", []string{
			`{"op":"fw_del","node":"fw1","src":"10.0.0.0/24","dst":"10.1.0.0/24"}`,
			`{"op":"explain","id":"e1"}`,
		}},
		{"obs_stats", []string{
			`{"op":"node_down","node":"fw1"}`,
			`{"op":"stats","id":"s1"}`,
		}},
		{"obs_trace", []string{
			`{"op":"node_down","node":"fw1"}`,
			`{"op":"trace","id":"t1"}`,
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := exchangeOpts(t, c.lines,
				incr.Options{Workers: 1, Obs: obs.New(256)}, false)
			path := filepath.Join("testdata", "golden", c.name+".ndjson")
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire exchange diverged from golden %s\n--- got ---\n%s\n--- want ---\n%s",
					path, got, want)
			}
		})
	}
}

// exchangePersist is exchange with a persistent session over dir; the
// session shuts down cleanly (final snapshot) after the input drains.
func exchangePersist(t *testing.T, lines []string, dir string) []byte {
	t.Helper()
	net, invs, err := buildNetwork(netConfig{network: "datacenter", groups: 3})
	if err != nil {
		t.Fatal(err)
	}
	sopts := incr.Options{Workers: 1, Persist: &incr.PersistOptions{Dir: dir}}
	sess, reports, err := incr.NewSession(net, core.Options{Engine: core.EngineSAT}, invs, sopts)
	if err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader(strings.Join(lines, "\n") + "\n")
	var out bytes.Buffer
	if err := serve(sess, net, reports, in, &out, serveHooks{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := sess.Shutdown(); err != nil {
		t.Fatal(err)
	}
	return normalize(out.Bytes())
}

// TestGoldenPersistence pins the durability wire shapes across a
// restart: exchange 1 applies a change with a request id, inspects
// persist_status, and shuts down; exchange 2 recovers from the same
// state directory — its init line serves entirely from the restored
// verdict store, persist_status reports the warm restart, the replayed
// request id answers duplicate:true without re-applying, and stats
// carries the recovered_groups / reverified_on_recovery counters.
func TestGoldenPersistence(t *testing.T) {
	dir := t.TempDir()
	got1 := exchangePersist(t, []string{
		`{"op":"node_down","node":"fw1","id":"req-1"}`,
		`{"op":"persist_status","id":"ps1"}`,
	}, dir)
	got2 := exchangePersist(t, []string{
		`{"op":"persist_status","id":"ps2"}`,
		`{"op":"node_down","node":"fw1","id":"req-1"}`,
		`{"op":"stats","id":"st1"}`,
	}, dir)
	for i, got := range [][]byte{got1, got2} {
		path := filepath.Join("testdata", "golden", fmt.Sprintf("persistence_run%d.ndjson", i+1))
		if *update {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file (regenerate with -update): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("wire exchange diverged from golden %s\n--- got ---\n%s\n--- want ---\n%s",
				path, got, want)
		}
	}
}

// TestGoldenBudgetExceeded pins the degraded-verdict wire shape: with a
// (deliberately immediate) request deadline every solve is cut off, each
// report carries outcome "unknown" with budget_exceeded, and the result
// line counts them. Deterministic because no solver ever runs.
func TestGoldenBudgetExceeded(t *testing.T) {
	got := exchangeOpts(t, []string{
		`{"op":"node_down","node":"fw1"}`,
		`{"op":"propose","id":"b1","changes":[{"op":"node_up","node":"fw1"}]}`,
		`{"op":"rollback","id":"b2"}`,
	}, incr.Options{Workers: 1, RequestTimeout: 1, NoRepair: true}, false)
	path := filepath.Join("testdata", "golden", "budget_exceeded.ndjson")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("budget exchange diverged from golden %s\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestGoldenTopology pins the topology wire op over a file-described
// network: the session is built exactly the way `vmnd -topology` builds
// it, the summary reports the description's name/source and node-kind
// counts, incremental ops address file-described nodes by name, and the
// dump answer re-exports the live (post-change) network as a canonical
// vmn-topology/1 description inline.
func TestGoldenTopology(t *testing.T) {
	d := netdesc.FatTree(2, 1)
	net, invs, err := netdesc.Build(d, "")
	if err != nil {
		t.Fatal(err)
	}
	sess, reports, err := incr.NewSession(net, core.Options{Engine: core.EngineSAT}, invs, incr.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hooks := serveHooks{topoName: d.Name, topoSource: "fattree-k2.json"}
	lines := []string{
		`{"op":"topology","id":"t1"}`,
		`{"op":"node_down","node":"p0-fw"}`,
		`{"op":"topology","id":"t2","name":"dump"}`,
	}
	in := strings.NewReader(strings.Join(lines, "\n") + "\n")
	var out bytes.Buffer
	if err := serve(sess, net, reports, in, &out, hooks, nil); err != nil {
		t.Fatal(err)
	}
	got := normalize(out.Bytes())
	path := filepath.Join("testdata", "golden", "topology.ndjson")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire exchange diverged from golden %s\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestTopologyStartupRejectsMalformed pins the -topology startup
// contract the daemon relies on: a malformed or adversarial description
// file yields one structured *netdesc.Error naming the file (and where
// possible line/field) and NOTHING is built — so main fails before any
// session state exists, never serving a partial network.
func TestTopologyStartupRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name, body, field string
	}{
		{"syntax", `{"format":"vmn-topology/1",`, ""},
		{"unknown_field", `{"format":"vmn-topology/1","name":"x","bogus":1,"nodes":[]}`, "bogus"},
		{"dangling_link", `{"format":"vmn-topology/1","name":"x","nodes":[` +
			`{"name":"a","kind":"switch"},{"name":"b","kind":"switch"}],` +
			`"links":[["a","nope"]]}`, "links[0]"},
		{"dup_addr", `{"format":"vmn-topology/1","name":"x","classes":["c"],"nodes":[` +
			`{"name":"a","kind":"host","addr":"10.0.0.1","class":"c"},` +
			`{"name":"b","kind":"host","addr":"10.0.0.1","class":"c"}],` +
			`"links":[["a","b"]]}`, "nodes[1].addr"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(dir, c.name+".json")
			if err := os.WriteFile(path, []byte(c.body), 0o644); err != nil {
				t.Fatal(err)
			}
			d, net, invs, err := netdesc.BuildFile(path)
			if d != nil || net != nil || invs != nil {
				t.Fatalf("malformed file must build nothing, got %v / %v / %v", d, net, invs)
			}
			var de *netdesc.Error
			if !errors.As(err, &de) {
				t.Fatalf("want *netdesc.Error, got %T: %v", err, err)
			}
			if de.File == "" {
				t.Fatalf("structured error must name the file: %v", de)
			}
			if c.field != "" && !strings.Contains(de.Field, c.field) {
				t.Fatalf("want field %q in error, got %v", c.field, de)
			}
		})
	}
}

// TestFaultInjection forces a panic inside a solve path (worker pool) and
// asserts the containment contract: the request that hit the panic gets a
// structured error line, and the next request re-verifies from scratch
// with correct verdicts.
func TestFaultInjection(t *testing.T) {
	out := exchangeOpts(t, []string{
		`{"op":"inject_panic","id":"f1"}`,
		`{"op":"node_down","node":"fw1"}`, // solve panics here
		`{"op":"node_up","node":"fw1"}`,   // must answer correctly
	}, incr.Options{Workers: 2}, true)
	lines := bytes.Split(bytes.TrimSpace(out), []byte("\n"))
	if len(lines) != 4 {
		t.Fatalf("want init + ack + error + result lines, got %d:\n%s", len(lines), out)
	}
	var ack struct{ Op string }
	if err := json.Unmarshal(lines[1], &ack); err != nil || ack.Op != "inject_panic" {
		t.Fatalf("want inject_panic ack, got %s (err %v)", lines[1], err)
	}
	var werr struct {
		Error string
		Op    string
	}
	if err := json.Unmarshal(lines[2], &werr); err != nil {
		t.Fatalf("error line not JSON: %s (%v)", lines[2], err)
	}
	if !strings.Contains(werr.Error, "injected fault") || werr.Op != "node_down" {
		t.Fatalf("want structured injected-fault error with op, got %s", lines[2])
	}
	var res struct {
		Seq         int
		Unsatisfied int
		Reports     []struct{ Satisfied bool }
	}
	if err := json.Unmarshal(lines[3], &res); err != nil {
		t.Fatalf("result line not JSON: %s (%v)", lines[3], err)
	}
	// The panicked Apply consumed seq 2 (error path); node_up is seq 3,
	// re-verified from scratch and all-green again.
	if res.Seq != 3 || res.Unsatisfied != 0 || len(res.Reports) != 6 {
		t.Fatalf("daemon did not answer correctly after the panic: %s", lines[3])
	}
}

// TestCrashResilience drives the serve loop with the shared corpus of
// malformed, out-of-order, and panic-triggering requests and asserts the
// daemon contract: serve returns nil (exit 0), every output line is valid
// JSON, and the daemon still answers the corpus's final noop with a
// result line. The same corpus backs the `make vmnd-smoke` pipeline
// against the real binary.
func TestCrashResilience(t *testing.T) {
	corpus, err := os.ReadFile(filepath.Join("testdata", "crash_corpus.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	net, invs, err := buildNetwork(netConfig{network: "datacenter", groups: 3})
	if err != nil {
		t.Fatal(err)
	}
	sopts := incr.Options{Workers: 2}
	hooks := wireFaultInjection(&sopts)
	sess, reports, err := incr.NewSession(net, core.Options{Engine: core.EngineSAT}, invs, sopts)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := serve(sess, net, reports, bytes.NewReader(corpus), &out, hooks, nil); err != nil {
		t.Fatalf("serve must survive the crash corpus: %v", err)
	}
	lines := bytes.Split(bytes.TrimSpace(out.Bytes()), []byte("\n"))
	for i, line := range lines {
		if !json.Valid(line) {
			t.Fatalf("output line %d is not valid JSON: %q", i, line)
		}
	}
	var last struct {
		Seq     int
		Reports []struct{ Satisfied bool }
	}
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatal(err)
	}
	if len(last.Reports) != 6 {
		t.Fatalf("daemon did not answer the final request with a full report set: %s",
			lines[len(lines)-1])
	}
	for _, r := range last.Reports {
		if !r.Satisfied {
			t.Fatalf("final verdicts wrong after the crash corpus: %s", lines[len(lines)-1])
		}
	}
}

// TestGoldenErrorLinesKeepSession pins that a malformed line leaves the
// session usable: the error line carries the last good sequence number and
// the next valid line still produces a result.
func TestGoldenErrorLinesKeepSession(t *testing.T) {
	out := exchange(t, []string{
		`{"op":"frobnicate"}`,
		`{"op":"node_down","node":"fw1"}`,
	})
	lines := bytes.Split(bytes.TrimSpace(out), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("want init + error + result lines, got %d:\n%s", len(lines), out)
	}
	if !bytes.Contains(lines[1], []byte(`"error"`)) {
		t.Fatalf("second line should be an error: %s", lines[1])
	}
	if !bytes.Contains(lines[2], []byte(`"seq":2`)) {
		t.Fatalf("session should continue after an error line: %s", lines[2])
	}
}

// TestRestartSmoke is the end-to-end restart drill against the REAL
// binary (`make vmnd-restart-smoke`): run vmnd with a state directory,
// apply a net-zero change pair, SIGKILL it mid-session, restart on the
// same directory, and assert the warm restart re-verified nothing —
// the init line reports zero cache misses and stats reports zero
// lifetime solves — then SIGTERM exits 0 after a graceful drain.
func TestRestartSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "vmnd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building vmnd: %v\n%s", err, out)
	}
	dir := t.TempDir()
	args := []string{"-network", "datacenter", "-groups", "3", "-engine", "sat", "-state-dir", dir}

	// Run 1: init, two acked changes that net out to the initial state,
	// then SIGKILL — no shutdown snapshot, recovery replays the journal.
	cmd1 := exec.Command(bin, args...)
	in1, err := cmd1.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	out1, err := cmd1.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd1.Stderr = os.Stderr
	if err := cmd1.Start(); err != nil {
		t.Fatal(err)
	}
	sc1 := bufio.NewScanner(out1)
	sc1.Buffer(make([]byte, 0, 1<<20), 1<<20)
	readLine := func(sc *bufio.Scanner, what string) []byte {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("EOF waiting for %s (err %v)", what, sc.Err())
		}
		return append([]byte(nil), sc.Bytes()...)
	}
	readLine(sc1, "run 1 init")
	for i, line := range []string{
		`{"op":"node_down","node":"h0-0","id":"r1"}`,
		`{"op":"node_up","node":"h0-0","id":"r2"}`,
	} {
		if _, err := io.WriteString(in1, line+"\n"); err != nil {
			t.Fatal(err)
		}
		ack := readLine(sc1, fmt.Sprintf("run 1 ack %d", i))
		if !bytes.Contains(ack, []byte(fmt.Sprintf(`"id":"r%d"`, i+1))) {
			t.Fatalf("run 1 ack %d missing id: %s", i, ack)
		}
	}
	if err := cmd1.Process.Kill(); err != nil { // SIGKILL, no cleanup
		t.Fatal(err)
	}
	cmd1.Wait()

	// Run 2: warm restart from the journal. The initial verification
	// must be served entirely from the restored verdict store.
	cmd2 := exec.Command(bin, args...)
	in2, err := cmd2.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	out2, err := cmd2.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd2.Stderr = os.Stderr
	if err := cmd2.Start(); err != nil {
		t.Fatal(err)
	}
	sc2 := bufio.NewScanner(out2)
	sc2.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var init struct {
		CacheMisses int `json:"cache_misses"`
		Unsatisfied int
	}
	if err := json.Unmarshal(readLine(sc2, "run 2 init"), &init); err != nil {
		t.Fatal(err)
	}
	if init.CacheMisses != 0 || init.Unsatisfied != 0 {
		t.Fatalf("warm restart re-verified: cache_misses=%d unsatisfied=%d",
			init.CacheMisses, init.Unsatisfied)
	}
	if _, err := io.WriteString(in2, `{"op":"persist_status","id":"ps"}`+"\n"); err != nil {
		t.Fatal(err)
	}
	var ps struct {
		Recovered       bool `json:"recovered"`
		ColdStart       bool `json:"cold_start"`
		RecoveredGroups int  `json:"recovered_groups"`
	}
	if err := json.Unmarshal(readLine(sc2, "persist_status"), &ps); err != nil {
		t.Fatal(err)
	}
	if !ps.Recovered || ps.ColdStart || ps.RecoveredGroups == 0 {
		t.Fatalf("not a warm restart: %+v", ps)
	}
	if _, err := io.WriteString(in2, `{"op":"stats","id":"st"}`+"\n"); err != nil {
		t.Fatal(err)
	}
	var st struct {
		Totals struct {
			Solves int `json:"solves"`
		} `json:"totals"`
	}
	if err := json.Unmarshal(readLine(sc2, "stats"), &st); err != nil {
		t.Fatal(err)
	}
	if st.Totals.Solves != 0 {
		t.Fatalf("warm restart on an unchanged network re-solved %d times", st.Totals.Solves)
	}
	// A replayed pre-kill request id answers duplicate without re-applying.
	if _, err := io.WriteString(in2, `{"op":"node_up","node":"h0-0","id":"r2"}`+"\n"); err != nil {
		t.Fatal(err)
	}
	if dup := readLine(sc2, "replayed r2"); !bytes.Contains(dup, []byte(`"duplicate":true`)) {
		t.Fatalf("replayed id not deduplicated: %s", dup)
	}

	// Graceful shutdown: SIGTERM drains and exits 0.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	go io.Copy(io.Discard, out2) // unblock any final writes
	done := make(chan error, 1)
	go func() { done <- cmd2.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		cmd2.Process.Kill()
		t.Fatal("daemon did not exit within 30s of SIGTERM")
	}
	in2.Close()
	in1.Close()
}
