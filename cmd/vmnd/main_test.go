package main

// Golden-file tests for the NDJSON wire protocol: every supported op (and
// the malformed-input error paths) gets one recorded exchange — the
// initial verification result line plus one result/error line per input
// line — so any change to the wire format shows up as a reviewable diff.
// Regenerate with:
//
//	go test ./cmd/vmnd -run TestGolden -update
//
// Durations are nondeterministic and normalized to 0 before comparison
// (and in the recorded files).

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
)

var update = flag.Bool("update", false, "rewrite golden files")

var durationRe = regexp.MustCompile(`"duration_ns":\d+`)

func normalize(b []byte) []byte {
	return durationRe.ReplaceAll(b, []byte(`"duration_ns":0`))
}

// exchange builds a fresh session over the small datacenter and drives the
// wire loop with the given input lines.
func exchange(t *testing.T, lines []string) []byte {
	t.Helper()
	net, invs, err := buildNetwork(netConfig{network: "datacenter", groups: 3})
	if err != nil {
		t.Fatal(err)
	}
	sess, reports, err := incr.NewSession(net, core.Options{Engine: core.EngineSAT}, invs,
		incr.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader(strings.Join(lines, "\n") + "\n")
	var out bytes.Buffer
	if err := serve(sess, net, reports, in, &out); err != nil {
		t.Fatal(err)
	}
	return normalize(out.Bytes())
}

func TestGoldenWireProtocol(t *testing.T) {
	cases := []struct {
		name  string
		lines []string
	}{
		{"node_down", []string{`{"op":"node_down","node":"fw1"}`}},
		{"node_up", []string{
			`{"op":"node_down","node":"h2-0"}`,
			`{"op":"node_up","node":"h2-0"}`,
		}},
		{"relabel", []string{`{"op":"relabel","node":"h0-0","class":"broken-0"}`}},
		{"fw_allow", []string{`{"op":"fw_allow","node":"fw1","src":"10.0.0.0/24","dst":"10.1.0.0/24"}`}},
		{"fw_deny", []string{`{"op":"fw_deny","node":"fw1","src":"10.2.0.0/24","dst":"*"}`}},
		{"fw_del", []string{`{"op":"fw_del","node":"fw1","src":"10.0.0.0/24","dst":"10.1.0.0/24"}`}},
		{"box_reconfig", []string{`{"op":"box_reconfig","node":"fw2"}`}},
		{"box_remove", []string{`{"op":"box_remove","node":"ids2"}`}},
		{"inv_add", []string{
			`{"op":"inv_add","invariant":{"type":"reachability","dst":"h1-0","src_addr":"10.0.0.1","label":"leak?"}}`,
		}},
		{"inv_remove", []string{
			`{"op":"inv_add","invariant":{"type":"simple_isolation","dst":"h2-0","src_addr":"10.0.0.1","label":"extra"}}`,
			`{"op":"inv_remove","name":"extra"}`,
		}},
		{"noop", []string{`{"op":"noop"}`}},
		{"change_set", []string{
			`[{"op":"fw_del","node":"fw2","src":"10.0.0.0/24","dst":"10.1.0.0/24"},` +
				`{"op":"relabel","node":"h0-0","class":"broken-0"},` +
				`{"op":"relabel","node":"h1-0","class":"broken-1"}]`,
		}},
		{"malformed", []string{
			`not json at all`,
			`{"op":"frobnicate"}`,
			`{"op":"node_down","node":"nope"}`,
			`{"op":"fw_deny","node":"ids1","src":"10.0.0.0/24","dst":"*"}`,
			`{"op":"fw_deny","node":"fw1","src":"999.0.0.0/24","dst":"*"}`,
			`{"op":"inv_add","invariant":{"type":"weird","dst":"h0-0"}}`,
			`{"op":"noop"}`,
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := exchange(t, c.lines)
			path := filepath.Join("testdata", "golden", c.name+".ndjson")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire exchange diverged from golden %s\n--- got ---\n%s\n--- want ---\n%s",
					path, got, want)
			}
		})
	}
}

// TestGoldenErrorLinesKeepSession pins that a malformed line leaves the
// session usable: the error line carries the last good sequence number and
// the next valid line still produces a result.
func TestGoldenErrorLinesKeepSession(t *testing.T) {
	out := exchange(t, []string{
		`{"op":"frobnicate"}`,
		`{"op":"node_down","node":"fw1"}`,
	})
	lines := bytes.Split(bytes.TrimSpace(out), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("want init + error + result lines, got %d:\n%s", len(lines), out)
	}
	if !bytes.Contains(lines[1], []byte(`"error"`)) {
		t.Fatalf("second line should be an error: %s", lines[1])
	}
	if !bytes.Contains(lines[2], []byte(`"seq":2`)) {
		t.Fatalf("session should continue after an error line: %s", lines[2])
	}
}
