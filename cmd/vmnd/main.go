// Command vmnd is VMN's long-running incremental verification service: it
// builds one of the built-in evaluation networks, verifies its invariant
// set once, then reads newline-delimited JSON change-sets from stdin and
// emits one JSON result per change-set on stdout — re-verifying only the
// invariants each change-set can affect (see internal/incr and DESIGN.md).
//
// Usage:
//
//	vmnd -network datacenter -groups 5
//	echo '{"op":"node_down","node":"fw1"}' | vmnd -network datacenter
//
// Input lines are a single change object or an array applied atomically:
//
//	{"op":"node_down","node":"fw1"}
//	[{"op":"fw_del","node":"fw1","src":"10.0.0.0/16","dst":"10.1.0.0/16"},
//	 {"op":"relabel","node":"h0-0","class":"broken-0"}]
//	{"op":"inv_add","invariant":{"type":"simple_isolation","dst":"h1-0","src_addr":"10.2.0.1"}}
//	{"op":"noop"}
//
// Each result line carries the dirty/cache counters and the full report
// set; malformed or inapplicable change-sets produce an error line and the
// session continues.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/inv"
)

// netConfig selects and sizes a built-in evaluation network.
type netConfig struct {
	network   string
	subnets   int
	groups    int
	tenants   int
	peerings  int
	withCache bool
}

// buildNetwork materializes a built-in network and its invariant set.
func buildNetwork(cfg netConfig) (*core.Network, []inv.Invariant, error) {
	var (
		net  *core.Network
		invs []inv.Invariant
	)
	switch cfg.network {
	case "enterprise":
		e := bench.NewEnterprise(bench.EnterpriseConfig{Subnets: cfg.subnets, HostsPerSubnet: 1})
		net = e.Net
		invs = e.AllInvariants()
	case "datacenter":
		d := bench.NewDatacenter(bench.DCConfig{Groups: cfg.groups, HostsPerGroup: 1, WithCaches: cfg.withCache})
		net = d.Net
		for a := 0; a < cfg.groups; a++ {
			for b := 0; b < cfg.groups; b++ {
				if a != b {
					invs = append(invs, d.IsolationInvariant(a, b))
				}
			}
		}
		if cfg.withCache {
			for g := 0; g < cfg.groups; g++ {
				invs = append(invs, d.DataIsolationInvariant(g))
			}
		}
	case "multitenant":
		m := bench.NewMultiTenant(bench.MTConfig{Tenants: cfg.tenants, PubPerTenant: 2, PrivPerTenant: 2})
		net = m.Net
		for a := 0; a < cfg.tenants; a++ {
			for b := 0; b < cfg.tenants; b++ {
				if a != b {
					invs = append(invs,
						m.PrivPrivInvariant(a, b), m.PubPrivInvariant(a, b), m.PrivPubInvariant(a, b))
				}
			}
		}
	case "isp":
		i := bench.NewISP(bench.ISPConfig{Peerings: cfg.peerings, Subnets: cfg.subnets})
		net = i.Net
		for s := 0; s < cfg.subnets; s++ {
			invs = append(invs, i.Invariant(s, 0))
		}
	default:
		return nil, nil, fmt.Errorf("unknown network %q", cfg.network)
	}
	return net, invs, nil
}

// serve runs the NDJSON loop: one initial result line for the session's
// first verification, then one result (or error) line per input line.
// This is the whole wire protocol of vmnd; the golden-file tests in
// main_test.go drive it directly.
func serve(sess *incr.Session, net *core.Network, reports []core.Report, in io.Reader, out io.Writer) error {
	bw := bufio.NewWriter(out)
	enc := json.NewEncoder(bw)
	emit := func(v any) error {
		if err := enc.Encode(v); err != nil {
			return err
		}
		return bw.Flush()
	}
	if err := emit(incr.EncodeResult(net.Topo, sess.LastApply(), reports)); err != nil {
		return err
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		changes, err := incr.DecodeChangeSet(net, line)
		if err != nil {
			if err := emit(incr.WireError{Seq: sess.LastApply().Seq, Error: err.Error()}); err != nil {
				return err
			}
			continue
		}
		reports, err := sess.Apply(changes)
		if err != nil {
			if err := emit(incr.WireError{Seq: sess.LastApply().Seq, Error: err.Error()}); err != nil {
				return err
			}
			continue
		}
		if err := emit(incr.EncodeResult(net.Topo, sess.LastApply(), reports)); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading stdin: %w", err)
	}
	return nil
}

func main() {
	var (
		network   = flag.String("network", "datacenter", "enterprise | datacenter | multitenant | isp")
		subnets   = flag.Int("subnets", 6, "subnets (enterprise, isp)")
		groups    = flag.Int("groups", 4, "policy groups (datacenter)")
		tenants   = flag.Int("tenants", 3, "tenants (multitenant)")
		peerings  = flag.Int("peerings", 2, "peering points (isp)")
		withCache = flag.Bool("with-caches", false, "add caches and data servers (datacenter)")
		engine    = flag.String("engine", "auto", "auto | sat | explicit")
		seed      = flag.Int64("seed", 0, "solver seed")
		workers   = flag.Int("workers", 0, "re-verification pool size (0 = GOMAXPROCS)")
		noSym     = flag.Bool("no-symmetry", false, "verify every invariant individually")
		nodeGran  = flag.Bool("node-granularity", false,
			"dirty at node granularity instead of prefix/rule level (escape hatch, comparison baseline)")
	)
	flag.Parse()

	opts := core.Options{Seed: *seed}
	switch *engine {
	case "sat":
		opts.Engine = core.EngineSAT
	case "explicit":
		opts.Engine = core.EngineExplicit
	case "auto":
	default:
		fail("unknown engine %q", *engine)
	}

	net, invs, err := buildNetwork(netConfig{
		network:   *network,
		subnets:   *subnets,
		groups:    *groups,
		tenants:   *tenants,
		peerings:  *peerings,
		withCache: *withCache,
	})
	if err != nil {
		fail("%v", err)
	}

	sess, reports, err := incr.NewSession(net, opts, invs,
		incr.Options{Workers: *workers, NoSymmetry: *noSym, NodeGranularity: *nodeGran})
	if err != nil {
		fail("%v", err)
	}

	if err := serve(sess, net, reports, os.Stdin, os.Stdout); err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vmnd: "+format+"\n", args...)
	os.Exit(2)
}
