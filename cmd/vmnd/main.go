// Command vmnd is VMN's long-running incremental verification service: it
// builds one of the built-in evaluation networks, verifies its invariant
// set once, then reads newline-delimited JSON change-sets from stdin and
// emits one JSON result per change-set on stdout — re-verifying only the
// invariants each change-set can affect (see internal/incr and DESIGN.md).
//
// Usage:
//
//	vmnd -network datacenter -groups 5
//	echo '{"op":"node_down","node":"fw1"}' | vmnd -network datacenter
//
// Input lines are a single change object or an array applied atomically:
//
//	{"op":"node_down","node":"fw1"}
//	[{"op":"fw_del","node":"fw1","src":"10.0.0.0/16","dst":"10.1.0.0/16"},
//	 {"op":"relabel","node":"h0-0","class":"broken-0"}]
//	{"op":"inv_add","invariant":{"type":"simple_isolation","dst":"h1-0","src_addr":"10.2.0.1"}}
//	{"op":"noop"}
//
// Each result line carries the dirty/cache counters and the full report
// set; malformed or inapplicable change-sets produce an error line and the
// session continues.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/inv"
)

func main() {
	var (
		network   = flag.String("network", "datacenter", "enterprise | datacenter | multitenant | isp")
		subnets   = flag.Int("subnets", 6, "subnets (enterprise, isp)")
		groups    = flag.Int("groups", 4, "policy groups (datacenter)")
		tenants   = flag.Int("tenants", 3, "tenants (multitenant)")
		peerings  = flag.Int("peerings", 2, "peering points (isp)")
		withCache = flag.Bool("with-caches", false, "add caches and data servers (datacenter)")
		engine    = flag.String("engine", "auto", "auto | sat | explicit")
		seed      = flag.Int64("seed", 0, "solver seed")
		workers   = flag.Int("workers", 0, "re-verification pool size (0 = GOMAXPROCS)")
		noSym     = flag.Bool("no-symmetry", false, "verify every invariant individually")
	)
	flag.Parse()

	opts := core.Options{Seed: *seed}
	switch *engine {
	case "sat":
		opts.Engine = core.EngineSAT
	case "explicit":
		opts.Engine = core.EngineExplicit
	case "auto":
	default:
		fail("unknown engine %q", *engine)
	}

	var (
		net  *core.Network
		invs []inv.Invariant
	)
	switch *network {
	case "enterprise":
		e := bench.NewEnterprise(bench.EnterpriseConfig{Subnets: *subnets, HostsPerSubnet: 1})
		net = e.Net
		invs = e.AllInvariants()
	case "datacenter":
		d := bench.NewDatacenter(bench.DCConfig{Groups: *groups, HostsPerGroup: 1, WithCaches: *withCache})
		net = d.Net
		for a := 0; a < *groups; a++ {
			for b := 0; b < *groups; b++ {
				if a != b {
					invs = append(invs, d.IsolationInvariant(a, b))
				}
			}
		}
		if *withCache {
			for g := 0; g < *groups; g++ {
				invs = append(invs, d.DataIsolationInvariant(g))
			}
		}
	case "multitenant":
		m := bench.NewMultiTenant(bench.MTConfig{Tenants: *tenants, PubPerTenant: 2, PrivPerTenant: 2})
		net = m.Net
		for a := 0; a < *tenants; a++ {
			for b := 0; b < *tenants; b++ {
				if a != b {
					invs = append(invs,
						m.PrivPrivInvariant(a, b), m.PubPrivInvariant(a, b), m.PrivPubInvariant(a, b))
				}
			}
		}
	case "isp":
		i := bench.NewISP(bench.ISPConfig{Peerings: *peerings, Subnets: *subnets})
		net = i.Net
		for s := 0; s < *subnets; s++ {
			invs = append(invs, i.Invariant(s, 0))
		}
	default:
		fail("unknown network %q", *network)
	}

	sess, reports, err := incr.NewSession(net, opts, invs,
		incr.Options{Workers: *workers, NoSymmetry: *noSym})
	if err != nil {
		fail("%v", err)
	}

	out := bufio.NewWriter(os.Stdout)
	enc := json.NewEncoder(out)
	emit := func(v any) {
		if err := enc.Encode(v); err != nil {
			fail("%v", err)
		}
		if err := out.Flush(); err != nil {
			fail("%v", err)
		}
	}
	emit(incr.EncodeResult(net.Topo, sess.LastApply(), reports))

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		changes, err := incr.DecodeChangeSet(net, line)
		if err != nil {
			emit(incr.WireError{Seq: sess.LastApply().Seq, Error: err.Error()})
			continue
		}
		reports, err := sess.Apply(changes)
		if err != nil {
			emit(incr.WireError{Seq: sess.LastApply().Seq, Error: err.Error()})
			continue
		}
		emit(incr.EncodeResult(net.Topo, sess.LastApply(), reports))
	}
	if err := sc.Err(); err != nil {
		fail("reading stdin: %v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vmnd: "+format+"\n", args...)
	os.Exit(2)
}
