// Command vmnd is VMN's long-running incremental verification service: it
// builds one of the built-in evaluation networks, verifies its invariant
// set once, then reads newline-delimited JSON change-sets from stdin and
// emits one JSON result per change-set on stdout — re-verifying only the
// invariants each change-set can affect (see internal/incr and DESIGN.md).
//
// Usage:
//
//	vmnd -network datacenter -groups 5
//	vmnd -topology examples/topologies/fattree-k4.json
//	echo '{"op":"node_down","node":"fw1"}' | vmnd -network datacenter
//
// -topology serves a vmn-topology/1 description file (see internal/netdesc)
// instead of a built-in network; a malformed file is one structured
// file:line:field error and exit 2 — no partial session ever serves. The
// "topology" op introspects what the daemon verifies:
//
//	{"op":"topology","id":"t1"}               (summary: name, source, sizes)
//	{"op":"topology","id":"t2","name":"dump"} (plus inline canonical export
//	                                           of the live network)
//
// Input lines are a single change object or an array applied atomically:
//
//	{"op":"node_down","node":"fw1"}
//	[{"op":"fw_del","node":"fw1","src":"10.0.0.0/16","dst":"10.1.0.0/16"},
//	 {"op":"relabel","node":"h0-0","class":"broken-0"}]
//	{"op":"inv_add","invariant":{"type":"simple_isolation","dst":"h1-0","src_addr":"10.2.0.1"}}
//	{"op":"noop"}
//
// An apply_batch envelope submits a change list for coalescing before
// the (single, atomic) apply: repeated updates to one element collapse
// to the last writer, an add-then-delete pair nets out to nothing. The
// result line reports the raw (enqueued) and eliminated (coalesced)
// change counts; verdicts are bit-identical to applying the same
// changes one at a time.
//
//	{"op":"apply_batch","id":"b1","changes":[
//	  {"op":"fw_deny","node":"fw1","src":"10.0.0.0/16","dst":"10.1.0.0/16"},
//	  {"op":"relabel","node":"h0-0","class":"x"},{"op":"relabel","node":"h0-0","class":""}]}
//
// Transactional requests verify a change-set against shadow state before
// deciding — the deployment-guardrail pattern:
//
//	{"op":"propose","id":"r1","changes":[{"op":"fw_del","node":"fw1",
//	  "src":"10.0.0.0/16","dst":"10.1.0.0/16"}]}
//	{"op":"commit","id":"r2"}     (or {"op":"rollback","id":"r2"})
//
// A propose answers with a decision (reject on newly violated invariants,
// with verified minimal-repair suggestions) and the full shadow report
// set; rollback leaves the session bit-identical to never having
// proposed.
//
// Each result line carries the dirty/cache counters and the full report
// set; malformed or inapplicable change-sets produce an error line and
// the session continues. Every request runs under recover() with an
// optional wall-clock deadline (-timeout) and solver conflict budget
// (-max-conflicts): solver bugs become structured error lines and
// over-budget checks degrade to explicit budget_exceeded verdicts — the
// daemon itself keeps serving.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	gonet "net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/netdesc"
	"github.com/netverify/vmn/internal/obs"
	"github.com/netverify/vmn/internal/store"
	"github.com/netverify/vmn/internal/topo"
)

// netConfig selects and sizes a built-in evaluation network.
type netConfig struct {
	network   string
	subnets   int
	groups    int
	tenants   int
	peerings  int
	withCache bool
}

// buildNetwork materializes a built-in network and its invariant set.
func buildNetwork(cfg netConfig) (*core.Network, []inv.Invariant, error) {
	var (
		net  *core.Network
		invs []inv.Invariant
	)
	switch cfg.network {
	case "enterprise":
		e := bench.NewEnterprise(bench.EnterpriseConfig{Subnets: cfg.subnets, HostsPerSubnet: 1})
		net = e.Net
		invs = e.AllInvariants()
	case "datacenter":
		d := bench.NewDatacenter(bench.DCConfig{Groups: cfg.groups, HostsPerGroup: 1, WithCaches: cfg.withCache})
		net = d.Net
		for a := 0; a < cfg.groups; a++ {
			for b := 0; b < cfg.groups; b++ {
				if a != b {
					invs = append(invs, d.IsolationInvariant(a, b))
				}
			}
		}
		if cfg.withCache {
			for g := 0; g < cfg.groups; g++ {
				invs = append(invs, d.DataIsolationInvariant(g))
			}
		}
	case "multitenant":
		m := bench.NewMultiTenant(bench.MTConfig{Tenants: cfg.tenants, PubPerTenant: 2, PrivPerTenant: 2})
		net = m.Net
		for a := 0; a < cfg.tenants; a++ {
			for b := 0; b < cfg.tenants; b++ {
				if a != b {
					invs = append(invs,
						m.PrivPrivInvariant(a, b), m.PubPrivInvariant(a, b), m.PrivPubInvariant(a, b))
				}
			}
		}
	case "isp":
		i := bench.NewISP(bench.ISPConfig{Peerings: cfg.peerings, Subnets: cfg.subnets})
		net = i.Net
		for s := 0; s < cfg.subnets; s++ {
			invs = append(invs, i.Invariant(s, 0))
		}
	default:
		return nil, nil, fmt.Errorf("unknown network %q", cfg.network)
	}
	return net, invs, nil
}

// serveHooks carries the daemon-level test hooks and session metadata;
// the zero value disables the hooks and reports an unnamed built-in
// topology.
type serveHooks struct {
	// armFault, when non-nil, makes the next group solve panic (the
	// inject_panic op; see wireFaultInjection). Nil rejects the op.
	armFault func()
	// topoName / topoSource label the "topology" op's answer: the
	// description name (or built-in network name) and where it came
	// from (the file path, or "builtin").
	topoName   string
	topoSource string
}

// wireTopology answers the "topology" introspection op: what the daemon
// is verifying and how big it is. With {"name":"dump"} the full current
// network is exported inline as a canonical vmn-topology/1 description
// (including any firewall rules edited over the wire since startup).
type wireTopology struct {
	Op          string        `json:"op"`
	Id          string        `json:"id,omitempty"`
	Seq         int           `json:"seq"`
	Name        string        `json:"name"`
	Source      string        `json:"source"`
	Hosts       int           `json:"hosts"`
	Switches    int           `json:"switches"`
	Middleboxes int           `json:"middleboxes"`
	Externals   int           `json:"externals"`
	Links       int           `json:"links"`
	Invariants  int           `json:"invariants"`
	Classes     int           `json:"classes"`
	Desc        *netdesc.Desc `json:"desc,omitempty"`
}

// topologyResponse summarizes the live network; dump additionally exports
// it. The export can fail (MDL-interpreted boxes are not exportable) —
// that is a structured error, not a dead session.
func topologyResponse(sess *incr.Session, net *core.Network, hooks serveHooks, id string, dump bool) (any, error) {
	w := wireTopology{
		Op:     "topology",
		Id:     id,
		Seq:    sess.LastApply().Seq,
		Name:   hooks.topoName,
		Source: hooks.topoSource,
	}
	if w.Name == "" {
		w.Name = "builtin"
	}
	if w.Source == "" {
		w.Source = "builtin"
	}
	links := 0
	for _, n := range net.Topo.Nodes() {
		switch n.Kind {
		case topo.Host:
			w.Hosts++
		case topo.Switch:
			w.Switches++
		case topo.Middlebox:
			w.Middleboxes++
		case topo.External:
			w.Externals++
		}
		links += len(net.Topo.Neighbors(n.ID))
	}
	w.Links = links / 2
	var invs []inv.Invariant
	for _, r := range sess.CurrentReports() {
		invs = append(invs, r.Invariant)
	}
	w.Invariants = len(invs)
	if net.Registry != nil {
		w.Classes = len(net.Registry.Names())
	}
	if dump {
		d, err := netdesc.FromNetwork(w.Name, net, invs)
		if err != nil {
			return nil, err
		}
		w.Desc = d
	}
	return w, nil
}

// wireFaultInjection connects the inject_panic wire op to the session's
// fault hook: arming makes the next group solve panic, exercising the
// whole containment path (worker recover → Apply error → invalidate →
// structured error line, correct verdicts on the next request).
func wireFaultInjection(sopts *incr.Options) serveHooks {
	var armed atomic.Bool
	sopts.FaultHook = func(string) {
		if armed.CompareAndSwap(true, false) {
			panic("injected fault (inject_panic)")
		}
	}
	return serveHooks{armFault: func() { armed.Store(true) }}
}

// ingestQueue bounds how far the reader stage may run ahead of the
// verifier, and the verifier ahead of the writer. Backpressure, not
// buffering: a slow consumer eventually blocks stdin.
const ingestQueue = 64

// serve runs the NDJSON loop: one initial result line for the session's
// first verification, then one result (or error) line per input line.
// This is the whole wire protocol of vmnd; the golden-file tests in
// main_test.go drive it directly. Every request is handled under a
// recover(), so a bug anywhere in decode or verification degrades to a
// structured error line and the daemon keeps serving.
//
// The loop is pipelined into three stages — read, handle (decode +
// verify), encode+flush — connected by bounded channels, so input
// ingest and response serialization overlap verification instead of
// serialising behind it. Each stage is a single goroutine draining a
// FIFO, so the response stream stays totally ordered: response i
// reflects requests 1..i and nothing later.
// A nil stop channel disables graceful-shutdown handling (a nil channel
// never fires in a select); main passes the SIGTERM/SIGINT channel. On
// stop, already-read requests drain through the handler — every change
// the daemon acked (or is about to ack) is fully processed and, with
// persistence on, journaled — and serve returns so main can snapshot
// and exit 0. Unread stdin is deliberately left behind: it was never
// acked, and at-least-once clients replay unacked requests by id.
func serve(sess *incr.Session, net *core.Network, reports []core.Report, in io.Reader, out io.Writer, hooks serveHooks, stop <-chan struct{}) error {
	lines := make(chan []byte, ingestQueue)
	resps := make(chan any, ingestQueue)

	var readErr error
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		defer close(lines)
		sc := bufio.NewScanner(in)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			// The scanner reuses its buffer; the line crosses a stage
			// boundary and must be owned by the receiver.
			select {
			case lines <- append([]byte(nil), sc.Bytes()...):
			case <-stop:
				return
			}
		}
		readErr = sc.Err()
	}()

	go func() {
		defer close(resps)
		resps <- incr.EncodeResult(net.Topo, sess.LastApply(), reports)
		for {
			select {
			case line, ok := <-lines:
				if !ok {
					return
				}
				if resp := handle(sess, net, hooks, line); resp != nil {
					resps <- resp
				}
			case <-stop:
				// Drain the in-flight (already read and queued) requests,
				// then stop. The reader may stay blocked on a quiet stdin;
				// it holds no state worth waiting for.
				for {
					select {
					case line, ok := <-lines:
						if !ok {
							return
						}
						if resp := handle(sess, net, hooks, line); resp != nil {
							resps <- resp
						}
					default:
						return
					}
				}
			}
		}
	}()

	bw := bufio.NewWriter(out)
	enc := json.NewEncoder(bw)
	for v := range resps {
		if err := enc.Encode(v); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	// resps closing means the handler drained lines. readErr is only
	// settled (and safe to read) once the reader goroutine finished; on
	// the stop path it may still be blocked on stdin — skip it, the
	// daemon is exiting anyway.
	select {
	case <-readerDone:
		if readErr != nil {
			return fmt.Errorf("reading stdin: %w", readErr)
		}
	default:
	}
	return nil
}

// handle processes one request line and returns the response value (nil
// for blank lines). Panics are contained here and answered as structured
// error lines carrying the request's op and id when they were parseable.
func handle(sess *incr.Session, net *core.Network, hooks serveHooks, line []byte) (resp any) {
	var op, id string
	fail := func(err error) any {
		return incr.WireError{Seq: sess.LastApply().Seq, Error: err.Error(), Op: op, Id: id}
	}
	defer func() {
		if r := recover(); r != nil {
			resp = incr.WireError{
				Seq:   sess.LastApply().Seq,
				Error: fmt.Sprintf("panic: %v", r),
				Op:    op,
				Id:    id,
			}
		}
	}()
	if len(bytes.TrimSpace(line)) == 0 {
		return nil
	}
	req, envelope, err := incr.ParseRequest(line)
	if err != nil {
		return fail(err)
	}
	if envelope {
		op, id = req.Op, req.Id
		switch req.Op {
		case "apply_batch":
			// Replay dedup BEFORE decoding: an at-least-once client
			// resending an already-acked id must not re-apply — and
			// firewall ops mutate live state at decode time, so even
			// decoding the duplicate would corrupt the session.
			if id != "" && sess.IsApplied(id) {
				res := incr.EncodeResult(net.Topo, sess.LastApply(), sess.CurrentReports())
				res.Id, res.Duplicate = id, true
				return res
			}
			// Guard before decoding: firewall ops mutate live state at
			// decode time, which would leak past a pending shadow.
			if sess.ProposePending() {
				return fail(incr.ErrProposePending)
			}
			changes, err := incr.DecodeChanges(net, req.Changes)
			if err != nil {
				return fail(err)
			}
			reports, _, err := sess.ApplyBatchID(id, changes)
			if err != nil {
				return fail(err)
			}
			res := incr.EncodeResult(net.Topo, sess.LastApply(), reports)
			res.Id = id
			return res
		case "propose":
			changes, err := incr.DecodeProposeSet(net, req.Changes)
			if err != nil {
				return fail(err)
			}
			pr, err := sess.Propose(changes)
			if err != nil {
				return fail(err)
			}
			return incr.EncodeProposeResult(net.Topo, id, changes, pr)
		case "commit":
			reports, dup, err := sess.CommitID(id)
			if err != nil {
				return fail(err)
			}
			ack := incr.WireTxAck{Op: "commit", Id: id, Seq: sess.LastApply().Seq, Committed: true, Duplicate: dup}
			for _, r := range reports {
				if !r.Satisfied {
					ack.Unsatisfied++
				}
			}
			totals := incr.EncodeTotals(sess.TotalStats())
			ack.Totals = &totals
			return ack
		case "rollback":
			if err := sess.Rollback(); err != nil {
				return fail(err)
			}
			return incr.WireTxAck{Op: "rollback", Id: id, Seq: sess.LastApply().Seq, RolledBack: true}
		case "inject_panic":
			if hooks.armFault == nil {
				return fail(errors.New("fault injection disabled (run with -fault-injection)"))
			}
			hooks.armFault()
			return incr.WireTxAck{Op: "inject_panic", Id: id, Seq: sess.LastApply().Seq}
		case "stats":
			return statsResponse(sess, id)
		case "topology":
			w, err := topologyResponse(sess, net, hooks, id, req.Name == "dump")
			if err != nil {
				return fail(err)
			}
			return w
		case "persist_status":
			return incr.EncodePersistStatus(id, sess.PersistStatus())
		case "trace":
			w := incr.WireTrace{Op: "trace", Id: id, Seq: sess.LastApply().Seq, Spans: []obs.SpanRecord{}}
			if o := sess.Observability(); o != nil {
				if spans := o.Trace.Drain(); spans != nil {
					w.Spans = spans
				}
			}
			return w
		case "explain":
			recs := sess.Explain()
			if req.Name != "" {
				recs = nil
				if r, ok := sess.ExplainGroup(req.Name); ok {
					recs = []incr.ExplainRecord{r}
				}
			}
			w := incr.EncodeExplain(net.Topo, id, sess.LastApply().Seq, recs)
			if w.Groups == nil {
				w.Groups = []incr.WireExplainGroup{}
			}
			return w
		}
	}
	// Plain change-set (single object or array): decode-and-apply. A
	// replayed request id dedups BEFORE decoding (firewall ops mutate
	// live state at decode time); with a propose pending, refuse before
	// decoding for the same reason.
	if id != "" && sess.IsApplied(id) {
		res := incr.EncodeResult(net.Topo, sess.LastApply(), sess.CurrentReports())
		res.Id, res.Duplicate = id, true
		return res
	}
	if sess.ProposePending() {
		return fail(incr.ErrProposePending)
	}
	changes, err := incr.DecodeChangeSet(net, line)
	if err != nil {
		return fail(err)
	}
	reports, _, err := sess.ApplyID(id, changes)
	if err != nil {
		return fail(err)
	}
	res := incr.EncodeResult(net.Topo, sess.LastApply(), reports)
	res.Id = id
	return res
}

// statsResponse assembles the "stats" introspection answer from the
// session's lifetime counters, canonicalization stats, aggregate solver
// work, and (when observability is on) a flat metrics-registry snapshot.
func statsResponse(sess *incr.Session, id string) incr.WireStats {
	classes, sharedChecks, encTranslated := sess.CanonStats()
	ss := sess.SolverStats()
	w := incr.WireStats{
		Op:                 "stats",
		Id:                 id,
		Seq:                sess.LastApply().Seq,
		Totals:             incr.EncodeTotals(sess.TotalStats()),
		CanonClasses:       classes,
		CanonSharedChecks:  sharedChecks,
		CanonEncTranslated: encTranslated,
		Solver: incr.WireSolverStats{
			Decisions:    ss.Decisions,
			Propagations: ss.Propagations,
			Conflicts:    ss.Conflicts,
			Restarts:     ss.Restarts,
			Learnt:       ss.Learnt,
		},
	}
	if o := sess.Observability(); o != nil {
		w.Metrics = o.Metrics.Snapshot()
	}
	if rec := sess.Recovery(); rec.Recovered {
		w.RecoveredGroups = rec.RecoveredGroups
		w.ReverifiedOnRecovery = rec.ReverifiedOnRecovery
	}
	return w
}

// serveHTTP exposes the metrics registry in Prometheus text format at
// /metrics plus the stdlib pprof handlers at /debug/pprof/ on addr,
// in the background for the life of the daemon.
func serveHTTP(addr string, o *obs.Obs) (gonet.Addr, error) {
	ln, err := gonet.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		o.Metrics.WritePrometheus(w)
	})
	// net/http/pprof registers on the default mux; mount it under the
	// canonical prefix.
	mux.Handle("/debug/pprof/", http.DefaultServeMux)
	go http.Serve(ln, mux)
	return ln.Addr(), nil
}

func main() {
	var (
		topology  = flag.String("topology", "", "serve a vmn-topology/1 description file instead of a built-in network")
		network   = flag.String("network", "datacenter", "enterprise | datacenter | multitenant | isp")
		subnets   = flag.Int("subnets", 6, "subnets (enterprise, isp)")
		groups    = flag.Int("groups", 4, "policy groups (datacenter)")
		tenants   = flag.Int("tenants", 3, "tenants (multitenant)")
		peerings  = flag.Int("peerings", 2, "peering points (isp)")
		withCache = flag.Bool("with-caches", false, "add caches and data servers (datacenter)")
		engine    = flag.String("engine", "auto", "auto | sat | explicit")
		seed      = flag.Int64("seed", 0, "solver seed")
		workers   = flag.Int("workers", 0, "re-verification pool size (0 = GOMAXPROCS)")
		noSym     = flag.Bool("no-symmetry", false, "verify every invariant individually")
		nodeGran  = flag.Bool("node-granularity", false,
			"dirty at node granularity instead of prefix/rule level (escape hatch, comparison baseline)")
		timeout = flag.Duration("timeout", 0,
			"per-request wall-clock budget (0 = none); checks past the deadline degrade to budget_exceeded verdicts")
		maxConflicts = flag.Int64("max-conflicts", 0,
			"per-solve SAT conflict budget (0 = unlimited); exhausted solves report outcome unknown with budget_exceeded")
		faultInj = flag.Bool("fault-injection", false,
			"enable the inject_panic test op (forces a panic in the next solve; containment testing only)")
		httpAddr = flag.String("http", "",
			"serve Prometheus metrics (/metrics) and pprof (/debug/pprof/) on this address (e.g. :9090; empty = off)")
		slowSolve = flag.Duration("slow-solve", 0,
			"log solves at or above this wall clock as NDJSON on stderr (e.g. 50ms; 0 = off)")
		traceBuf = flag.Int("trace-buf", 4096,
			"span ring-buffer capacity for the trace op (0 disables tracing)")
		stateDir = flag.String("state-dir", "",
			"state directory for crash-safe persistence (journal + snapshots); empty = in-memory only")
		fsync = flag.String("fsync", "always",
			"journal fsync policy: always (every record durable before its ack) | none (page cache only; a machine crash can lose the tail, detected as torn on restart)")
		snapshotEvery = flag.Int("snapshot-every", 64,
			"compact the journal into a snapshot after this many records (<0 disables periodic snapshots)")
		recoverySample = flag.Int("recovery-sample", 2,
			"restored verdict groups to re-verify against fresh solves on warm restart before trusting the store (<0 disables)")
	)
	flag.Parse()

	opts := core.Options{Seed: *seed, MaxConflicts: *maxConflicts}
	switch *engine {
	case "sat":
		opts.Engine = core.EngineSAT
	case "explicit":
		opts.Engine = core.EngineExplicit
	case "auto":
	default:
		fail("unknown engine %q", *engine)
	}

	// A topology file replaces the built-in network wholesale. Loading is
	// all-or-nothing: a malformed or adversarial file produces exactly one
	// structured file:line:field error and exit 2 before any session state
	// exists — the daemon never serves a partially built network.
	var (
		net      *core.Network
		invs     []inv.Invariant
		topoName = *network
		topoSrc  = "builtin"
		err      error
	)
	if *topology != "" {
		var d *netdesc.Desc
		d, net, invs, err = netdesc.BuildFile(*topology)
		if err != nil {
			fail("%v", err)
		}
		topoName, topoSrc = d.Name, *topology
	} else {
		net, invs, err = buildNetwork(netConfig{
			network:   *network,
			subnets:   *subnets,
			groups:    *groups,
			tenants:   *tenants,
			peerings:  *peerings,
			withCache: *withCache,
		})
		if err != nil {
			fail("%v", err)
		}
	}

	// The daemon always runs with observability on: the stats/trace wire
	// ops and the -http endpoint serve from this handle. Library users get
	// the nil (disabled) default unless they opt in.
	o := obs.New(*traceBuf)
	sopts := incr.Options{
		Workers: *workers, NoSymmetry: *noSym, NodeGranularity: *nodeGran,
		RequestTimeout: *timeout,
		Obs:            o, SlowSolve: *slowSolve,
	}
	if *stateDir != "" {
		sync, err := store.ParseSyncPolicy(*fsync)
		if err != nil {
			fail("%v", err)
		}
		sopts.Persist = &incr.PersistOptions{
			Dir:            *stateDir,
			Sync:           sync,
			SnapshotEvery:  *snapshotEvery,
			RecoverySample: *recoverySample,
		}
	}
	var hooks serveHooks
	if *faultInj {
		hooks = wireFaultInjection(&sopts)
	}
	hooks.topoName, hooks.topoSource = topoName, topoSrc
	if *httpAddr != "" {
		addr, err := serveHTTP(*httpAddr, o)
		if err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "vmnd: metrics and pprof on http://%s\n", addr)
	}
	sess, reports, err := incr.NewSession(net, opts, invs, sopts)
	if err != nil {
		fail("%v", err)
	}
	if rec := sess.Recovery(); rec.Enabled {
		switch {
		case rec.Recovered:
			fmt.Fprintf(os.Stderr,
				"vmnd: warm restart from %s: snapshot seq %d + %d journal records, %d groups from the verdict store, %d re-verified\n",
				*stateDir, rec.SnapshotSeq, rec.JournalRecords, rec.RecoveredGroups, rec.ReverifiedOnRecovery)
		case rec.ColdStart:
			fmt.Fprintf(os.Stderr, "vmnd: cold start (%s); damaged state moved aside in %s\n", rec.Reason, *stateDir)
		default:
			fmt.Fprintf(os.Stderr, "vmnd: fresh state directory %s\n", *stateDir)
		}
	}

	// SIGTERM/SIGINT: stop reading, drain the in-flight requests, write
	// a final snapshot (Shutdown below), exit 0. A second signal kills
	// the process the hard way via Go's default disposition reset.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigc
		signal.Stop(sigc)
		close(stop)
	}()

	if err := serve(sess, net, reports, os.Stdin, os.Stdout, hooks, stop); err != nil {
		fail("%v", err)
	}
	// EOF and signal land here alike: make the session durable and leave
	// cleanly. Shutdown without persistence is a no-op.
	if err := sess.Shutdown(); err != nil {
		fail("shutdown: %v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vmnd: "+format+"\n", args...)
	os.Exit(2)
}
