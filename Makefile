# Development and CI entry points. `make ci` is the full gate: formatting,
# vet, build, race-enabled tests and a one-shot benchmark smoke run.

GO ?= go

.PHONY: ci fmt vet build test race bench-smoke fuzz-smoke vmnd-smoke vmnd-restart-smoke examples-validate topo-smoke bench-json bench-multicore bench-snapshot

ci: fmt vet build race fuzz-smoke vmnd-smoke vmnd-restart-smoke examples-validate topo-smoke bench-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled tests plus a live-daemon smoke under the race detector
# with the full observability surface armed (metrics/pprof listener,
# phase tracing, slow-solve logging): the crash corpus drives spans and
# counters from the worker pool concurrently with the HTTP exporter.
race:
	$(GO) test -race ./...
	$(GO) run -race ./cmd/vmnd -network datacenter -groups 3 -fault-injection \
		-http 127.0.0.1:0 -slow-solve 1ns \
		< cmd/vmnd/testdata/crash_corpus.ndjson > /dev/null

# One iteration of every Fig2 benchmark (SAT and explicit engines): a fast
# sanity check that the measured paths still run.
bench-smoke:
	$(GO) test -run '^$$' -bench Fig2 -benchtime 1x .

# A short coverage-guided run of each fuzz target beyond its checked-in
# seed corpus: the differential churn fuzzer (Session.Apply bit-identical
# to from-scratch VerifyAll in both dirtying granularities, now with
# Propose/Commit/Rollback transaction modes riding the op bytes), the
# wire decoder, and the transactional decoder (must never mutate live
# state), and the request-envelope parser the daemon runs per input line
# (stats/trace/explain and transaction shapes must never panic).
# `go test -fuzz` takes one target per invocation.
fuzz-smoke:
	$(GO) test ./internal/incr -run '^$$' -fuzz '^FuzzSessionDifferential$$' -fuzztime 15s
	$(GO) test ./internal/incr -run '^$$' -fuzz '^FuzzDecodeChangeSet$$' -fuzztime 5s
	$(GO) test ./internal/incr -run '^$$' -fuzz '^FuzzDecodeProposeSet$$' -fuzztime 5s
	$(GO) test ./internal/incr -run '^$$' -fuzz '^FuzzDecodeRequest$$' -fuzztime 5s
	$(GO) test ./internal/store -run '^$$' -fuzz '^FuzzDecodeJournal$$' -fuzztime 5s
	$(GO) test ./internal/netdesc -run '^$$' -fuzz '^FuzzDecodeTopology$$' -fuzztime 5s

# Every committed example topology must validate and build (one structured
# file:line:field error otherwise); byte-level canonical-form checking
# lives in TestExampleFiles (internal/netdesc).
examples-validate:
	@for f in examples/topologies/*.json; do \
		$(GO) run ./cmd/vmn -topology $$f -check || exit 1; done

# Topology-frontend smoke: generate a k=16 fat-tree (592 nodes) to disk,
# then load and verify it end-to-end through the real CLI.
topo-smoke:
	@tmp=$$(mktemp -d); rc=0; \
	$(GO) run ./cmd/vmn -gen fattree -k 16 -out $$tmp/fattree-k16.json && \
	$(GO) run ./cmd/vmn -topology $$tmp/fattree-k16.json > /dev/null || rc=$$?; \
	rm -rf $$tmp; exit $$rc

# vmnd crash-resilience smoke: pipe the malformed / out-of-order /
# panic-injecting request corpus through a live daemon; the gate here is
# exit status 0 (the daemon must never crash). Line-by-line validation of
# the responses lives in TestCrashResilience (cmd/vmnd).
vmnd-smoke:
	$(GO) run ./cmd/vmnd -network datacenter -groups 3 -fault-injection \
		< cmd/vmnd/testdata/crash_corpus.ndjson > /dev/null

# vmnd restart drill against the real binary: apply acked changes with a
# state directory, kill -9 mid-session, restart on the same directory and
# assert the warm start re-verifies nothing (zero cache misses, zero
# lifetime solves) and that SIGTERM drains and exits 0.
vmnd-restart-smoke:
	$(GO) test ./cmd/vmnd -run '^TestRestartSmoke$$' -count 1

# Machine-readable series for benchmark trajectory tracking.
bench-json:
	$(GO) run ./cmd/vmnbench -fig 2,explicit -runs 5 -json

# The figures whose numbers only mean something on a multi-core box: the
# explicit-engine worker sweep, the SAT solver-reuse comparison, the
# canonical-normalization comparison (class counts + encoding/verdict reuse
# rates), the churn comparison (incremental vs full, with the
# prefix-level vs node-level dirty-fraction series), the transactional
# guardrail comparison (propose/rollback vs apply-then-revert) and the
# streaming-pipeline comparison (pipelined+coalesced vs pipelined vs
# serial updates/sec under sustained FIB churn), plus the file-driven
# fat-tree and cloud-VPC scaling figures (tenant sweep at fixed shapes:
# canonical classes and encoding builds stay flat as tenants grow). CI
# runs this on the multi-core GitHub runner and uploads the JSON as an
# artifact.
bench-multicore:
	$(GO) run ./cmd/vmnbench -fig explicit,satincr,canon,churn,guardrail,stream,restart,fattree,vpc -runs 5 -json > bench-multicore.json

# A quick churn snapshot with the observability metrics registry attached:
# the JSON rows carry the per-figure metrics map (solve latency histogram,
# dirty-fraction distribution, hit rates), so trends are diffable across
# commits. CI uploads the file as an artifact.
bench-snapshot:
	$(GO) run ./cmd/vmnbench -fig churn -runs 3 -json -obs > bench-snapshot.json
