# Development and CI entry points. `make ci` is the full gate: formatting,
# vet, build, race-enabled tests and a one-shot benchmark smoke run.

GO ?= go

.PHONY: ci fmt vet build test race bench-smoke bench-json

ci: fmt vet build race bench-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every Fig2 benchmark (SAT and explicit engines): a fast
# sanity check that the measured paths still run.
bench-smoke:
	$(GO) test -run '^$$' -bench Fig2 -benchtime 1x .

# Machine-readable series for benchmark trajectory tracking.
bench-json:
	$(GO) run ./cmd/vmnbench -fig 2,explicit -runs 5 -json
