module github.com/netverify/vmn

go 1.22
